#include "src/hw/rcv_array.hpp"

namespace pd::hw {

Result<std::uint32_t> RcvArray::program(int ctxt, mem::PhysAddr pa, std::uint64_t len) {
  if (len == 0) return Errno::einval;
  const std::uint32_t n = capacity();
  if (in_use_ == n) return Errno::enospc;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t tid = (next_hint_ + i) % n;
    if (!entries_[tid].valid) {
      entries_[tid] = TidEntry{pa, len, true, ctxt};
      next_hint_ = (tid + 1) % n;
      ++in_use_;
      ++per_ctxt_[ctxt];
      return tid;
    }
  }
  return Errno::enospc;
}

Status RcvArray::unprogram(int ctxt, std::uint32_t tid) {
  if (tid >= capacity()) return Errno::einval;
  TidEntry& e = entries_[tid];
  if (!e.valid || e.owner_ctxt != ctxt) return Errno::einval;
  e = TidEntry{};
  --in_use_;
  --per_ctxt_[ctxt];
  return Status::success();
}

std::size_t RcvArray::unprogram_all(int ctxt) {
  // Skip the scan when the context holds nothing (the common case at
  // close time, after PSM freed everything).
  auto it = per_ctxt_.find(ctxt);
  if (it == per_ctxt_.end() || it->second == 0) return 0;
  std::size_t freed = 0;
  for (auto& e : entries_) {
    if (e.valid && e.owner_ctxt == ctxt) {
      e = TidEntry{};
      --in_use_;
      ++freed;
    }
  }
  it->second = 0;
  return freed;
}

const TidEntry* RcvArray::entry(std::uint32_t tid) const {
  if (tid >= capacity() || !entries_[tid].valid) return nullptr;
  return &entries_[tid];
}

}  // namespace pd::hw
