file(REMOVE_RECURSE
  "CMakeFiles/pd_hfi.dir/driver.cpp.o"
  "CMakeFiles/pd_hfi.dir/driver.cpp.o.d"
  "CMakeFiles/pd_hfi.dir/layouts.cpp.o"
  "CMakeFiles/pd_hfi.dir/layouts.cpp.o.d"
  "libpd_hfi.a"
  "libpd_hfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_hfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
