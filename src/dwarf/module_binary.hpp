// Kernel-module binary container.
//
// The paper's workflow inspects the DWARF headers of the module binary
// *shipped by Intel*. Our simulated HFI1 driver ships the same way: a
// section container holding (at least) `.debug_abbrev` and `.debug_info`
// produced by pd::dwarf::InfoBuilder, and whatever else a module carries
// (a `.modinfo` with the version string, a fake `.text`). The extract tool
// operates on this container only — never on the driver's C++ headers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.hpp"

namespace pd::dwarf {

class ModuleBinary {
 public:
  void set_section(const std::string& name, std::vector<std::uint8_t> bytes);
  const std::vector<std::uint8_t>* section(const std::string& name) const;
  std::vector<std::string> section_names() const;

  /// Serialize to the on-disk format (magic + section table).
  std::vector<std::uint8_t> serialize() const;
  static Result<ModuleBinary> deserialize(const std::vector<std::uint8_t>& bytes);

  Status save(const std::string& path) const;
  static Result<ModuleBinary> load(const std::string& path);

  /// Convenience for the `.modinfo` version string.
  void set_version(const std::string& version);
  std::optional<std::string> version() const;

 private:
  struct Section {
    std::string name;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Section> sections_;
};

}  // namespace pd::dwarf
