// Tests for the Figure-3 VA layouts / unification checks (§3.1) and the
// per-core kernel heap with cross-kernel free (§3.3).
#include <gtest/gtest.h>

#include "src/mem/kheap.hpp"
#include "src/mem/va_layout.hpp"

namespace pd::mem {
namespace {

TEST(VaLayout, LinuxConstantsMatchFigure3) {
  const KernelLayout l = linux_layout();
  EXPECT_EQ(l.direct_map.start, 0xFFFF'8800'0000'0000ull);
  EXPECT_EQ(l.direct_map.size(), 64ull << 40);
  EXPECT_EQ(l.valloc.start, 0xFFFF'C900'0000'0000ull);
  EXPECT_EQ(l.image.start, 0xFFFF'FFFF'8000'0000ull);
  EXPECT_EQ(l.module_space.start, 0xFFFF'FFFF'A000'0000ull);
}

TEST(VaLayout, OriginalMcKernelFailsUnification) {
  const auto report = check_unification(linux_layout(), mckernel_original_layout());
  EXPECT_FALSE(report.unified());
  // All three §3.1 requirements are violated by the original layout.
  EXPECT_FALSE(report.images_disjoint);
  EXPECT_FALSE(report.direct_maps_coincide);
  EXPECT_FALSE(report.lwk_image_mappable);
  EXPECT_EQ(report.violations.size(), 3u);
}

TEST(VaLayout, UnifiedMcKernelPassesAllRequirements) {
  const auto report = check_unification(linux_layout(), mckernel_unified_layout());
  EXPECT_TRUE(report.images_disjoint);
  EXPECT_TRUE(report.direct_maps_coincide);
  EXPECT_TRUE(report.lwk_image_mappable);
  EXPECT_TRUE(report.unified());
  EXPECT_TRUE(report.violations.empty());
}

TEST(VaLayout, DirectMapTranslationAgreesAcrossKernels) {
  const KernelLayout linux_l = linux_layout();
  const KernelLayout mck = mckernel_unified_layout();
  const PhysAddr pa = 0x1234'5678'9000ull;
  // Same kmalloc'd pointer is dereferenceable in both kernels (req. 2).
  EXPECT_EQ(linux_l.direct_map_va(pa), mck.direct_map_va(pa));
  EXPECT_EQ(mck.direct_map_pa(linux_l.direct_map_va(pa)), pa);
}

TEST(VaLayout, UnifiedImageSitsAtTopOfModuleSpace) {
  const KernelLayout linux_l = linux_layout();
  const KernelLayout mck = mckernel_unified_layout();
  EXPECT_TRUE(linux_l.module_space.contains_range(mck.image));
  // "Top of the Linux module space": less than 32 MiB of slack above it.
  EXPECT_LT(linux_l.module_space.end - mck.image.end, 32ull << 20);
}

TEST(KernelHeap, LocalAllocFree) {
  KernelHeap heap({0, 1, 2, 3}, ForeignFreePolicy::fail);
  auto a = heap.kmalloc(256, 2);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(heap.stats().allocs, 1u);
  EXPECT_EQ(heap.stats().bytes_live, 256u);
  EXPECT_TRUE(heap.kfree(*a, 3).ok());  // any owned CPU may free
  EXPECT_EQ(heap.stats().bytes_live, 0u);
  EXPECT_EQ(heap.live_blocks(), 0u);
}

TEST(KernelHeap, AllocOnForeignCpuRejected) {
  KernelHeap heap({4, 5}, ForeignFreePolicy::fail);
  EXPECT_EQ(heap.kmalloc(64, 0).error(), Errno::eperm);
}

TEST(KernelHeap, ForeignFreeFailsUnderOriginalPolicy) {
  // The original McKernel allocator: kfree() on a Linux CPU fails — the
  // exact defect §3.3 describes for SDMA completion processing.
  KernelHeap heap({60, 61, 62, 63}, ForeignFreePolicy::fail);
  auto a = heap.kmalloc(128, 60);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(heap.kfree(*a, /*linux cpu=*/0).error(), Errno::eperm);
  EXPECT_EQ(heap.stats().rejected_frees, 1u);
  EXPECT_EQ(heap.live_blocks(), 1u) << "block must remain live after the failed free";
}

TEST(KernelHeap, ForeignFreeRoutedToRemoteQueue) {
  KernelHeap heap({60, 61}, ForeignFreePolicy::remote_queue);
  auto a = heap.kmalloc(128, 60);
  ASSERT_TRUE(a.ok());
  // Linux CPU 0 runs the completion callback and frees LWK memory.
  EXPECT_TRUE(heap.kfree(*a, 0).ok());
  EXPECT_EQ(heap.stats().remote_frees, 1u);
  EXPECT_EQ(heap.remote_queue_depth(60), 1u);
  EXPECT_EQ(heap.live_blocks(), 1u) << "reclaim happens at drain time";
  EXPECT_EQ(heap.drain_remote_frees(60), 1u);
  EXPECT_EQ(heap.live_blocks(), 0u);
  EXPECT_EQ(heap.stats().bytes_live, 0u);
}

TEST(KernelHeap, DrainOnWrongCpuReclaimsNothing) {
  KernelHeap heap({60, 61}, ForeignFreePolicy::remote_queue);
  auto a = heap.kmalloc(128, 60);
  ASSERT_TRUE(heap.kfree(*a, 0).ok());
  EXPECT_EQ(heap.drain_remote_frees(61), 0u);
  EXPECT_EQ(heap.remote_queue_depth(60), 1u);
}

TEST(KernelHeap, DataIsRealZeroedMemory) {
  KernelHeap heap({0}, ForeignFreePolicy::fail);
  auto a = heap.kmalloc(64, 0);
  ASSERT_TRUE(a.ok());
  auto bytes = heap.data(*a);
  ASSERT_EQ(bytes.size(), 64u);
  for (auto b : bytes) EXPECT_EQ(b, 0);
  bytes[40] = 0x2A;  // write through; later readers see it
  EXPECT_EQ(heap.data(*a)[40], 0x2A);
  EXPECT_TRUE(heap.data(0xDEADBEEF).empty());
}

TEST(KernelHeap, DistinctAddressesCachelineSpaced) {
  KernelHeap heap({0}, ForeignFreePolicy::fail);
  auto a = heap.kmalloc(1, 0);
  auto b = heap.kmalloc(1, 0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_GE(*b - *a, 64u);
}

TEST(KernelHeap, FreeUnknownAddressRejected) {
  KernelHeap heap({0}, ForeignFreePolicy::remote_queue);
  EXPECT_EQ(heap.kfree(0x1234, 0).error(), Errno::einval);
}

TEST(KernelHeapSlab, LocalFreeParksOnMagazineAndKmallocReuses) {
  KernelHeap heap({0}, ForeignFreePolicy::fail);
  auto a = heap.kmalloc(192, 0);  // the SDMA completion-metadata size
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(heap.stats().host_allocs, 1u);
  heap.data(*a)[7] = 0x55;  // dirty it; reuse must re-zero
  ASSERT_TRUE(heap.kfree(*a, 0).ok());
  EXPECT_EQ(heap.magazine_depth(0), 1u);
  EXPECT_EQ(heap.stats().slab_recycles, 1u);
  EXPECT_TRUE(heap.data(*a).empty()) << "parked block is not live";

  auto b = heap.kmalloc(192, 0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a) << "steady state pops the same block back";
  EXPECT_EQ(heap.stats().slab_reuses, 1u);
  EXPECT_EQ(heap.stats().host_allocs, 1u) << "no second host allocation";
  EXPECT_EQ(heap.magazine_depth(0), 0u);
  auto bytes = heap.data(*b);
  ASSERT_EQ(bytes.size(), 192u);
  for (auto byte : bytes) ASSERT_EQ(byte, 0) << "reused block must be zeroed";
}

TEST(KernelHeapSlab, SameClassServesSmallerRequest) {
  KernelHeap heap({0}, ForeignFreePolicy::fail);
  auto a = heap.kmalloc(192, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap.kfree(*a, 0).ok());
  auto b = heap.kmalloc(150, 0);  // also rounds to the 192 class
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a);
  EXPECT_EQ(heap.stats().slab_reuses, 1u);
  EXPECT_EQ(heap.data(*b).size(), 150u) << "data() reflects the requested size";
}

TEST(KernelHeapSlab, MagazinesArePerCore) {
  KernelHeap heap({0, 1}, ForeignFreePolicy::fail);
  auto a = heap.kmalloc(192, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap.kfree(*a, 1).ok());  // freed on a different owned core
  // The block belongs to its *owner* core's magazine, so core 0 reuses it.
  EXPECT_EQ(heap.magazine_depth(0), 1u);
  EXPECT_EQ(heap.magazine_depth(1), 0u);
}

TEST(KernelHeapSlab, DrainedRemoteFreesLandOnMagazineInOneSplice) {
  KernelHeap heap({60}, ForeignFreePolicy::remote_queue);
  std::vector<PhysAddr> addrs;
  for (int i = 0; i < 3; ++i) {
    auto a = heap.kmalloc(192, 60);
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  for (const PhysAddr a : addrs)
    ASSERT_TRUE(heap.kfree(a, /*linux cpu=*/0).ok());
  EXPECT_EQ(heap.magazine_depth(60), 0u) << "nothing parked until the drain";
  EXPECT_EQ(heap.drain_remote_frees(60), 3u);
  EXPECT_EQ(heap.remote_queue_depth(60), 0u);
  EXPECT_EQ(heap.magazine_depth(60), 3u);
  EXPECT_EQ(heap.stats().slab_recycles, 3u);
  // Steady state: all three come back with zero host allocations.
  const std::uint64_t host_before = heap.stats().host_allocs;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(heap.kmalloc(192, 60).ok());
  EXPECT_EQ(heap.stats().host_allocs, host_before);
  EXPECT_EQ(heap.stats().slab_reuses, 3u);
  EXPECT_EQ(heap.magazine_depth(60), 0u);
}

TEST(KernelHeapSlab, OversizedBlocksBypassMagazines) {
  KernelHeap heap({0}, ForeignFreePolicy::fail);
  auto a = heap.kmalloc(8192, 0);  // above the largest (4096) class
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap.kfree(*a, 0).ok());
  EXPECT_EQ(heap.magazine_depth(0), 0u);
  EXPECT_EQ(heap.stats().slab_recycles, 0u);
  auto b = heap.kmalloc(8192, 0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(heap.stats().slab_reuses, 0u);
  EXPECT_EQ(heap.stats().host_allocs, 2u);
}

TEST(KernelHeapSlab, DisabledSlabModelsOriginalAllocator) {
  KernelHeap heap({0}, ForeignFreePolicy::fail, 0x0000'00F0'0000'0000ull,
                  /*slab_enabled=*/false);
  auto a = heap.kmalloc(192, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap.kfree(*a, 0).ok());
  EXPECT_EQ(heap.magazine_depth(0), 0u);
  auto b = heap.kmalloc(192, 0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(heap.stats().slab_reuses, 0u);
  EXPECT_EQ(heap.stats().host_allocs, 2u) << "every kmalloc touches the host heap";
}

}  // namespace
}  // namespace pd::mem
