#include "src/mem/numa_topology.hpp"

#include <cassert>

namespace pd::mem {

NumaTopology::NumaTopology(int total_cpus, int sockets)
    : total_cpus_(total_cpus),
      sockets_(sockets),
      cpus_per_socket_((total_cpus + sockets - 1) / sockets) {
  assert(total_cpus >= 1 && sockets >= 1 && sockets <= total_cpus);
}

NumaTopology NumaTopology::blocked(int total_cpus, int sockets) {
  return NumaTopology(total_cpus, sockets);
}

int NumaTopology::socket_of(int cpu) const {
  if (cpu < 0) return 0;
  const int socket = cpu / cpus_per_socket_;
  return socket >= sockets_ ? sockets_ - 1 : socket;
}

std::vector<int> NumaTopology::cpus_of(int socket) const {
  std::vector<int> cpus;
  for (int cpu = 0; cpu < total_cpus_; ++cpu)
    if (socket_of(cpu) == socket) cpus.push_back(cpu);
  return cpus;
}

}  // namespace pd::mem
