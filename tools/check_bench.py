#!/usr/bin/env python3
"""Bench regression gate for the paper-reproduction bench suites.

Reruns a bench binary in a scratch directory and compares its fresh JSON
output against the committed baseline.  Any gated metric that regresses by
more than ``--tolerance`` (default 15%) fails the run.  Two suites:

  fastpath  — bench_fastpath_cache / BENCH_fastpath.json: the fast-path
              cache squeeze plus the offload-storm (``ikc_batch`` /
              ``reply_ring``) rows.
  overload  — bench_fastpath_cache / BENCH_fastpath.json, ``overload``
              rows only: the multi-tenant overload ladder.  Gates Jain's
              fairness index per rung and the misbehaving-tenant rung's
              victim-p95 ratio (all simulated-time, deterministic).
  elastic   — bench_fastpath_cache / BENCH_fastpath.json, ``elastic`` rows
              only: the live 4 -> 2 -> 4 service-loop repartition under a
              64-stream offload storm.  Gates losslessness (lost/timeouts/
              stale/dead skips stay zero), time-to-quiesce, and the
              shrunken/restored steady-state p95s (simulated time).
  sim_scale — bench_sim_scale / BENCH_sim_scale.json: the calendar-queue
              DES engine at paper scale (raw events/sec, allocation-free
              event path, >= 256-node sharded UMT sweep).
  doom_submit — bench_doom_submit / BENCH_doom_submit.json: the pd-doom
              command-queue device class.  Gates the DoomPicoDriver's
              submit-latency speedup over the IKC offload path, the
              extent-vs-per-page PTE reduction, and that the fast path
              never falls back (all simulated-time, deterministic — run
              without --quick so the batch count matches the baseline).
  noise     — bench_noise_sweep / BENCH_noise.json: the OS-noise
              sensitivity study.  Gates that the Linux-vs-LWK slowdown gap
              is monotone in rank count under every noise profile and
              nonzero at the largest scale, exactly zero without noise,
              and that the LWK side is bit-exactly noise-immune (all
              simulated-time — run without --quick, which trims the node
              axis and the per-cell trial count).

Only host-speed-robust metrics are gated: simulated-time results (queueing
p95s, simulated bandwidth, simulated runtimes) are deterministic, and
ratios of host-timed runs (speedup, hit rates, allocations per op/event)
are robust to how fast the runner happens to be.  Raw events/sec gates in
the sim_scale suite measure the scheduler's core claim, so they stay gated
but should run with a wider ``--tolerance`` (the CI uses 0.5); wall-clock
seconds are reported but never gated.

Usage:
  python3 tools/check_bench.py --bench build/bench/bench_fastpath_cache \
      [--suite fastpath] [--baseline BENCH_fastpath.json] \
      [--tolerance 0.15] [--quick]
  python3 tools/check_bench.py --suite sim_scale \
      --bench build/bench/bench_sim_scale --tolerance 0.5

Exit status: 0 if the bench binary passed its own acceptance checks and no
gated metric regressed; 1 otherwise.  Stdlib only — no third-party imports.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

# Each gate: (dotted JSON path, direction, absolute epsilon).
#
# direction "higher" — a drop below baseline*(1-tol) fails;
# direction "lower"  — a rise above baseline*(1+tol) fails.
# The epsilon widens the band for near-zero baselines (15% of 0.000 is 0).
GATES_FASTPATH = [
    # Fast-path cache squeeze (ratios of host-timed loops — speed-independent).
    ("speedup", "higher", 0.0),
    ("baseline.heap_allocs_per_op", "lower", 0.5),
    ("optimized.heap_allocs_per_op", "lower", 0.01),
    # Range-precise invalidation keeps the persistent window hot.
    ("mixed_lifetime.precise.window_hit_rate", "higher", 0.01),
    # NUMA-aware drain batching bounds cross-socket traffic.
    ("numa_drain.numa_aware.cross_socket_drains_per_iter", "lower", 0.5),
    # Offload storm, simulated time: ring transport vs the legacy closed form.
    ("ikc_batch.ring.offloads_per_ms", "higher", 0.0),
    ("ikc_batch.ring.queue_p95_us", "lower", 1.0),
    ("ikc_batch.ring.degraded", "lower", 0.5),
    ("ikc_batch.ring.timeouts", "lower", 0.5),
    # Reply rings: the return path must keep saving ~1 wakeup per round trip
    # without giving back queueing latency.
    ("reply_ring.latch.wakeups_per_offload", "lower", 0.05),
    ("reply_ring.ring.wakeups_per_offload", "lower", 0.05),
    ("reply_ring.ring.queue_p95_us", "lower", 1.0),
    ("reply_ring.wakeups_saved_per_offload", "higher", 0.05),
]

# Reported for context but never gated (host-speed dependent).
INFORMATIONAL_FASTPATH = [
    "baseline.ops_per_sec",
    "optimized.ops_per_sec",
    "mixed_lifetime.precise.iters_per_sec",
    "numa_drain.numa_aware.iters_per_sec",
]

# Multi-tenant overload ladder (all simulated-time, deterministic). The
# rung names gated here exist in both quick and full sweeps.
GATES_OVERLOAD = [
    # Equal-weight rungs must divide the loops' capacity evenly: Jain's
    # index over per-job completed counts (1.0 = perfectly fair).
    ("overload.n16.jain", "higher", 0.0),
    ("overload.n256.jain", "higher", 0.0),
    ("overload.n1024.jain", "higher", 0.0),
    ("overload.n1024.queue_p95_us_worst", "lower", 1.0),
    # PR-4 degenerate case: the strict two-class drain's fairness must not
    # drift either (the weighted-fair scheduler reduces to it).
    ("overload.n64_strict.jain", "higher", 0.0),
    # Misbehaving tenant: victims' worst p95 vs the no-flooder baseline
    # stays bounded, and the fair drain keeps the victims even.
    ("overload.flood.victim_p95_ratio", "lower", 0.05),
    ("overload.flood.victim_jain", "higher", 0.0),
]

INFORMATIONAL_OVERLOAD = [
    "overload.n1024.completed",
    "overload.n1024.eagain",
    "overload.flood.flooder_completed",
    "overload.flood.flooder_eagain",
    "overload.flood.flooder_credit_waits",
]

# Elastic repartitioning (§8.7) — all simulated-time, deterministic. The
# hard invariants (lossless quiesce) get zero-tolerance gates via a tiny
# epsilon on a zero baseline; the latency rows gate with the normal band.
GATES_ELASTIC = [
    # Lossless handover: nothing stranded, nothing dropped, nothing pushed
    # onto the robustness ladder while loops came and went.
    ("elastic.lost", "lower", 0.0),
    ("elastic.failed", "lower", 0.0),
    ("elastic.timeouts", "lower", 0.0),
    ("elastic.stale_skips", "lower", 0.0),
    ("elastic.dead_skips", "lower", 0.0),
    # Handover cost: drain-and-reshard time for the two retires must not
    # creep, and the tails before/after each transition stay put.
    ("elastic.quiesce_us", "lower", 5.0),
    ("elastic.pre_p95_us", "lower", 1.0),
    ("elastic.shrink_after_p95_us", "lower", 1.0),
    ("elastic.grow_after_p95_us", "lower", 1.0),
]

INFORMATIONAL_ELASTIC = [
    "elastic.shrink_during_p95_us",
    "elastic.grow_during_p95_us",
    "elastic.attach_us",
    "elastic.submitted",
    "elastic.completed",
    "elastic.retired",
    "elastic.attached",
]

GATES_SIM_SCALE = [
    # Allocation-free event path: the scheduler's core contract. The raw
    # loop counts real operator-new calls; the sweep point counts
    # engine-attributed allocations (node-pool chunks, boxed callbacks,
    # calendar rebuilds, coroutine-frame host allocs) per event.
    ("engine_loop.steady_allocs_per_event", "lower", 0.01),
    ("sweep.n256.sharded_seq.allocs_per_event", "lower", 0.01),
    ("sweep.n256.sharded_par.allocs_per_event", "lower", 0.01),
    # Raw scheduler throughput and the paper-scale sweep rate: host-timed,
    # so run this suite with a wide --tolerance, but a collapse here is
    # exactly the regression this bench exists to catch.
    ("engine_loop.events_per_sec", "higher", 0.0),
    ("sweep.n256.sharded_seq.events_per_sec", "higher", 0.0),
    # Simulated results — deterministic; must not drift in either direction,
    # so gate both the sharded and legacy simulated runtimes as "lower"
    # (slower simulated apps mean the network/offload model changed) and the
    # ping-pong bandwidth as "higher".
    ("pingpong.mb_per_sec", "higher", 0.0),
    ("sweep.n256.sim_runtime_sec", "lower", 0.0),
    ("sweep.n256.legacy_sim_runtime_sec", "lower", 0.0),
]

INFORMATIONAL_SIM_SCALE = [
    "engine_loop.wall_sec",
    "sweep.n256.sharded_seq.wall_sec",
    "sweep.n256.sharded_par.wall_sec",
    "sweep.n256.par_speedup",
    "sweep.n256.legacy.events_per_sec",
]

# pd-doom batched submit: offload vs fast path (§3.4 on the second device
# class). Everything here is simulated time or a deterministic count, so the
# CI gates it tight (0.05) and without --quick.
GATES_DOOM_SUBMIT = [
    # The fast path must keep beating the offload path on submit latency.
    ("doom_submit.speedup_p50", "higher", 0.0),
    ("doom_submit.speedup_p95", "higher", 0.0),
    ("doom_submit.fast.submit_p50_us", "lower", 0.1),
    ("doom_submit.fast.submit_p95_us", "lower", 0.1),
    # Extent-sized PTEs vs the slow path's one-per-4KiB-page programming.
    ("doom_submit.pte_reduction", "higher", 0.0),
    ("doom_submit.fast.extents_per_batch", "lower", 0.1),
    # Every batch rides the fast path: fallbacks are a hard zero.
    ("doom_submit.fast.fallbacks", "lower", 0.0),
    ("doom_submit.fast.ring_full_fallbacks", "lower", 0.0),
]

INFORMATIONAL_DOOM_SUBMIT = [
    "doom_submit.slow.submit_p50_us",
    "doom_submit.slow.submit_p95_us",
    "doom_submit.slow.ptes_per_batch",
    "doom_submit.slow.sim_ms",
    "doom_submit.fast.sim_ms",
    "doom_submit.commands_retired",
    "doom_submit.dma_bytes",
]

# OS-noise sensitivity (ISSUE 10): the amplification claim. All simulated
# time; the seed-averaged mean gaps are deterministic given the committed
# noise seeds, so the suite runs without --quick (quick mode trims the node
# axis and the trial count, changing every gated value).
GATES_NOISE = [
    # The paper's claim, per noise shape: the Linux-vs-LWK slowdown gap is
    # monotone in rank count (1.0 = monotone, hard-gated via zero band)...
    ("noise.profiles.calibrated.monotone", "higher", 0.0),
    ("noise.profiles.daemon_storm.monotone", "higher", 0.0),
    ("noise.profiles.irq_heavy.monotone", "higher", 0.0),
    ("noise.profiles.correlated.monotone", "higher", 0.0),
    # ... and materially nonzero at the largest scale.
    ("noise.profiles.daemon_storm.gap_at_max_ranks", "higher", 0.01),
    ("noise.profiles.irq_heavy.gap_at_max_ranks", "higher", 0.01),
    ("noise.profiles.correlated.gap_at_max_ranks", "higher", 0.01),
    # No noise, no gap — exactly zero, the control arm of the study.
    ("noise.zero.max_abs_gap", "lower", 0.0),
    # LWK immunity: its slowdown under every Linux-side profile is 1.0 to
    # the last bit (silent profiles consume no RNG).
    ("noise.lwk.max_abs_dev", "lower", 0.0),
]

INFORMATIONAL_NOISE = [
    "noise.profiles.calibrated.gap_at_max_ranks",
    "noise.profiles.daemon_storm.gap_slope_per_doubling",
    "noise.profiles.irq_heavy.gap_slope_per_doubling",
    "noise.profiles.correlated.gap_slope_per_doubling",
    "noise.algos.Allreduce/dissemination",
    "noise.algos.Allreduce/recursive_doubling",
    "noise.algos.Allreduce/ring",
    "noise.algos.Alltoall/pairwise",
]

SUITES = {
    "fastpath": {
        "gates": GATES_FASTPATH,
        "informational": INFORMATIONAL_FASTPATH,
        "json": "BENCH_fastpath.json",
    },
    "overload": {
        "gates": GATES_OVERLOAD,
        "informational": INFORMATIONAL_OVERLOAD,
        "json": "BENCH_fastpath.json",
    },
    "elastic": {
        "gates": GATES_ELASTIC,
        "informational": INFORMATIONAL_ELASTIC,
        "json": "BENCH_fastpath.json",
    },
    "sim_scale": {
        "gates": GATES_SIM_SCALE,
        "informational": INFORMATIONAL_SIM_SCALE,
        "json": "BENCH_sim_scale.json",
    },
    "doom_submit": {
        "gates": GATES_DOOM_SUBMIT,
        "informational": INFORMATIONAL_DOOM_SUBMIT,
        "json": "BENCH_doom_submit.json",
    },
    "noise": {
        "gates": GATES_NOISE,
        "informational": INFORMATIONAL_NOISE,
        "json": "BENCH_noise.json",
    },
}


def lookup(doc: dict, dotted: str):
    node = doc
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def check(suite: dict, baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    failures = []
    print(f"{'metric':56s} {'baseline':>12s} {'current':>12s}  verdict")
    print("-" * 96)
    for path, direction, eps in suite["gates"]:
        base = lookup(baseline, path)
        cur = lookup(fresh, path)
        if base is None:
            # Metric absent from the committed baseline (older schema): the
            # fresh value becomes the de-facto baseline next time the JSON is
            # committed, so just report it.
            print(f"{path:56s} {'(new)':>12s} {cur!s:>12s}  SKIP (no baseline)")
            continue
        if cur is None:
            failures.append(f"{path}: missing from fresh bench output")
            print(f"{path:56s} {base!s:>12s} {'(gone)':>12s}  FAIL (missing)")
            continue
        base_f, cur_f = float(base), float(cur)
        if direction == "higher":
            limit = base_f * (1.0 - tolerance) - eps
            ok = cur_f >= limit
            bound = f">= {limit:.3f}"
        else:
            limit = base_f * (1.0 + tolerance) + eps
            ok = cur_f <= limit
            bound = f"<= {limit:.3f}"
        verdict = "ok" if ok else f"FAIL ({bound})"
        print(f"{path:56s} {base_f:12.3f} {cur_f:12.3f}  {verdict}")
        if not ok:
            failures.append(
                f"{path}: {cur_f:.3f} vs baseline {base_f:.3f} (allowed {bound})")
    print("-" * 96)
    for path in suite["informational"]:
        base = lookup(baseline, path)
        cur = lookup(fresh, path)
        print(f"{path:56s} {base!s:>12s} {cur!s:>12s}  (informational)")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--bench", required=True,
                    help="path to the bench binary for the chosen suite")
    ap.add_argument("--suite", choices=sorted(SUITES), default="fastpath",
                    help="which gate set / JSON schema to check "
                         "(default: fastpath)")
    ap.add_argument("--baseline", default=None,
                    help="committed baseline JSON (default: the suite's "
                         "canonical file, e.g. BENCH_fastpath.json)")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative regression (default: 0.15 = 15%%)")
    ap.add_argument("--outdir", default="bench-out",
                    help="scratch directory the bench runs in (default: bench-out)")
    ap.add_argument("--quick", action="store_true",
                    help="set PD_QUICK=1 (smaller sweep; simulated metrics then "
                         "use different workload sizes, so only compare against "
                         "a quick-mode baseline)")
    ap.add_argument("--reuse-outdir", action="store_true",
                    help="skip rerunning the bench when the suite's JSON already "
                         "exists in --outdir (for gating a second suite against "
                         "the same binary's output, e.g. fastpath then overload)")
    args = ap.parse_args()

    suite = SUITES[args.suite]
    if args.baseline is None:
        args.baseline = suite["json"]
    bench = os.path.abspath(args.bench)
    if not os.path.exists(bench):
        print(f"error: bench binary not found: {bench}", file=sys.stderr)
        return 1
    with open(args.baseline) as f:
        baseline = json.load(f)

    # Run in a scratch dir so the bench's JSON output cannot clobber the
    # committed baseline we are comparing against.
    os.makedirs(args.outdir, exist_ok=True)
    fresh_path = os.path.join(args.outdir, suite["json"])
    if args.reuse_outdir and os.path.exists(fresh_path):
        print(f"reusing existing {fresh_path} (--reuse-outdir)")
    else:
        env = dict(os.environ)
        if args.quick:
            env["PD_QUICK"] = "1"
        print(f"running {bench} (cwd={args.outdir})...")
        proc = subprocess.run([bench], cwd=args.outdir, env=env)
        if proc.returncode != 0:
            print(f"error: bench binary failed its own acceptance checks "
                  f"(exit {proc.returncode})", file=sys.stderr)
            return 1

    with open(fresh_path) as f:
        fresh = json.load(f)

    if bool(lookup(fresh, "workload.quick_mode")) != bool(
            lookup(baseline, "workload.quick_mode")):
        print("warning: quick_mode differs between baseline and fresh run; "
              "simulated metrics use different workload sizes and the gate "
              "may misfire", file=sys.stderr)

    failures = check(suite, baseline, fresh, args.tolerance)
    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed more than "
              f"{args.tolerance:.0%}:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print(f"\nOK: all gated metrics within {args.tolerance:.0%} of baseline "
          f"({args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
