// LEB128 variable-length integer coding as used by DWARF (DWARF4 §7.6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.hpp"

namespace pd::dwarf {

/// Append unsigned LEB128.
inline void write_uleb128(std::vector<std::uint8_t>& out, std::uint64_t value) {
  do {
    std::uint8_t byte = value & 0x7F;
    value >>= 7;
    if (value != 0) byte |= 0x80;
    out.push_back(byte);
  } while (value != 0);
}

/// Append signed LEB128.
inline void write_sleb128(std::vector<std::uint8_t>& out, std::int64_t value) {
  bool more = true;
  while (more) {
    std::uint8_t byte = value & 0x7F;
    value >>= 7;  // arithmetic shift keeps the sign
    const bool sign_bit = (byte & 0x40) != 0;
    if ((value == 0 && !sign_bit) || (value == -1 && sign_bit)) more = false;
    if (more) byte |= 0x80;
    out.push_back(byte);
  }
}

/// Bounded cursor over an encoded byte stream. All reads fail softly with
/// EINVAL instead of running past the end — the reader treats debug info as
/// untrusted input (it nominally comes from a vendor-shipped binary).
class ByteCursor {
 public:
  ByteCursor(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ >= size_; }
  void seek(std::size_t pos) { pos_ = pos <= size_ ? pos : size_; }

  Result<std::uint8_t> read_u8() {
    if (pos_ + 1 > size_) return Errno::einval;
    return data_[pos_++];
  }

  Result<std::uint16_t> read_u16() {
    if (pos_ + 2 > size_) return Errno::einval;
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                      static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }

  Result<std::uint32_t> read_u32() {
    if (pos_ + 4 > size_) return Errno::einval;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  Result<std::uint64_t> read_u64() {
    if (pos_ + 8 > size_) return Errno::einval;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  Result<std::uint64_t> read_uleb128() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_ || shift > 63) return Errno::einval;
      const std::uint8_t byte = data_[pos_++];
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return value;
  }

  Result<std::int64_t> read_sleb128() {
    std::int64_t value = 0;
    int shift = 0;
    std::uint8_t byte = 0;
    while (true) {
      if (pos_ >= size_ || shift > 63) return Errno::einval;
      byte = data_[pos_++];
      value |= static_cast<std::int64_t>(byte & 0x7F) << shift;
      shift += 7;
      if ((byte & 0x80) == 0) break;
    }
    if (shift < 64 && (byte & 0x40) != 0) value |= -(static_cast<std::int64_t>(1) << shift);
    return value;
  }

  /// NUL-terminated string (DW_FORM_string).
  Result<std::string> read_cstring() {
    std::string s;
    while (true) {
      if (pos_ >= size_) return Errno::einval;
      const char c = static_cast<char>(data_[pos_++]);
      if (c == '\0') break;
      s.push_back(c);
    }
    return s;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace pd::dwarf
