// Instantiated kernel address spaces (paper §3.1, made concrete).
//
// va_layout.hpp describes the Figure-3 layouts symbolically; this class
// actually builds the page tables: the physical direct map with 1 GiB
// leaves, the kernel image with 2 MiB leaves, and — the §3.1 requirement-3
// mechanism — aliasing another kernel's image into this space so its
// callback TEXT is genuinely translatable here, not just "declared
// visible". The unification tests dereference the same kmalloc pointer
// through both kernels' page tables and check it reaches the same
// physical byte.
#pragma once

#include <cstdint>
#include <optional>

#include "src/common/status.hpp"
#include "src/mem/page_table.hpp"
#include "src/mem/va_layout.hpp"

namespace pd::mem {

class KernelAddressSpace {
 public:
  /// Realize `layout` over `phys_bytes` of physical memory (rounded up to
  /// 1 GiB for the direct map) with the kernel image at `image_phys_base`
  /// (2 MiB aligned).
  static Result<KernelAddressSpace> build(const KernelLayout& layout,
                                          std::uint64_t phys_bytes,
                                          PhysAddr image_phys_base);

  KernelAddressSpace(KernelAddressSpace&&) = default;

  const KernelLayout& layout() const { return layout_; }

  std::optional<Translation> translate(VirtAddr va) const { return pt_.translate(va); }

  /// kmalloc-style pointer: the direct-map VA of a physical address.
  VirtAddr direct_va(PhysAddr pa) const { return layout_.direct_map_va(pa); }

  /// Map a foreign image range (another kernel's TEXT/DATA/BSS) at its own
  /// virtual addresses — what Linux does with the vmap_area reservation
  /// for McKernel's image at LWK boot.
  Status alias_image(const VaRange& range, PhysAddr phys_base);

  std::uint64_t mapped_pages() const { return pt_.mapped_pages(); }

 private:
  explicit KernelAddressSpace(KernelLayout layout) : layout_(std::move(layout)) {}

  KernelLayout layout_;
  PageTable pt_;
};

}  // namespace pd::mem
