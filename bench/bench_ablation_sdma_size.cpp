// Ablation: how much of the PicoDriver ping-pong win comes purely from
// the SDMA descriptor-size cap (§3.4)? Sweep the LWK fast path's maximum
// descriptor size from the Linux driver's 4 KiB up to the hardware's
// 10 KiB and measure 4 MB ping-pong bandwidth.
#include "bench/bench_common.hpp"
#include "src/common/units.hpp"
#include "src/mpirt/world.hpp"

int main() {
  using namespace pd;
  using namespace pd::time_literals;
  bench::print_banner("Ablation — PicoDriver max SDMA descriptor size",
                      "isolates the 4 KiB→10 KiB descriptor effect of §3.4");

  TextTable table({"Max descriptor", "Bandwidth MB/s", "Descriptors", "Mean bytes/desc"});
  for (std::uint64_t max_desc : {4096ull, 6144ull, 8192ull, 10240ull}) {
    mpirt::ClusterOptions copts;
    copts.nodes = 2;
    copts.mode = os::OsMode::mckernel_hfi;
    copts.cfg.pico_sdma_desc_bytes = max_desc;
    copts.mcdram_bytes = 512ull << 20;
    copts.ddr_bytes = 1ull << 30;
    mpirt::Cluster cluster(copts);
    mpirt::WorldOptions wopts;
    wopts.ranks_per_node = 1;
    wopts.buf_bytes = 8ull << 20;
    mpirt::MpiWorld world(cluster, wopts);

    constexpr std::uint64_t kBytes = 4_MiB;
    const int iters = 20;
    struct Shared {
      Time t0 = 0, t1 = 0;
    } shared;
    world.run([&](mpirt::Rank& rank) -> sim::Task<> {
      co_await rank.init();
      co_await rank.barrier();
      if (rank.id() == 0) shared.t0 = rank.world().cluster().engine().now();
      for (int i = 0; i < iters; ++i) {
        if (rank.id() == 0) {
          co_await rank.send(1, 10 + i, kBytes);
          co_await rank.recv(1, 1000 + i, kBytes);
        } else {
          co_await rank.recv(0, 10 + i, kBytes);
          co_await rank.send(0, 1000 + i, kBytes);
        }
      }
      if (rank.id() == 0) shared.t1 = rank.world().cluster().engine().now();
      co_await rank.finalize();
    });
    const double sec = to_sec(shared.t1 - shared.t0);
    const double mbps = static_cast<double>(kBytes) * iters / (sec / 2.0) / 1e6;
    std::uint64_t descs = 0, bytes = 0;
    for (int n = 0; n < cluster.num_nodes(); ++n) {
      descs += cluster.node(n).device->total_descriptors();
      bytes += cluster.node(n).device->total_descriptor_bytes();
    }
    table.add_row({format_bytes(max_desc), format_double(mbps, 1), std::to_string(descs),
                   format_double(descs ? static_cast<double>(bytes) / descs : 0, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
