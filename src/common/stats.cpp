#include "src/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace pd {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ = (mean_ * na + other.mean_ * nb) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size())
        out << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  return out.str();
}

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace pd
