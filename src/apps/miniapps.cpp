#include "src/apps/miniapps.hpp"

#include <array>
#include <vector>

#include "src/apps/topology.hpp"

namespace pd::apps {

namespace {

constexpr int kP2pBase = 1000;

int dir_index(int dim, int dir) { return dim * 2 + (dir > 0 ? 1 : 0); }

int step_tag(int step, int dim, int dir) {
  return kP2pBase + step * 8 + dir_index(dim, dir);
}

int rank_neighbor(mpirt::Rank& rank, int dim, int dir) {
  thread_local int cached_p = -1;
  thread_local std::array<int, 3> cached_dims;
  const int p = rank.world().size();
  if (p != cached_p) {
    cached_dims = cart_dims(p);
    cached_p = p;
  }
  return cart_neighbor(cached_dims, rank.id(), dim, dir);
}

}  // namespace

sim::Task<> stencil_rank(mpirt::Rank& rank, StencilParams params) {
  co_await rank.init();
  co_await rank.cart_create();

  rank.solve_begin();
  int halo_step = 0;
  for (int step = 0; step < params.timesteps; ++step) {
    // CG pressure solve: this loop is where OS noise amplifies. The halo
    // exchange only couples neighbours, but the two dot products couple
    // *every* rank, twice per iteration — any one delayed core stalls the
    // whole communicator for the rest of the solve.
    for (int iter = 0; iter < params.cg_iterations; ++iter) {
      co_await rank.compute(params.compute_per_iter);

      std::vector<mpirt::MpiReq> reqs;
      for (int dim = 0; dim < 3; ++dim) {
        for (int dir : {-1, +1}) {
          const int nb = rank_neighbor(rank, dim, dir);
          if (nb < 0) continue;
          reqs.push_back(
              rank.irecv(nb, step_tag(halo_step, dim, -dir), params.halo_bytes));
        }
      }
      for (int dim = 0; dim < 3; ++dim) {
        for (int dir : {-1, +1}) {
          const int nb = rank_neighbor(rank, dim, dir);
          if (nb < 0) continue;
          reqs.push_back(
              rank.isend(nb, step_tag(halo_step, dim, dir), params.halo_bytes));
        }
      }
      co_await rank.waitall(std::move(reqs));
      ++halo_step;

      // alpha = r·r / p·Ap, then the residual update's norm.
      co_await rank.allreduce(params.dot_bytes);
      co_await rank.allreduce(params.dot_bytes);
    }

    // End-of-solve residual restriction: one large vector allreduce —
    // crosses the recursive-doubling/ring crossover at scale.
    co_await rank.allreduce(params.residual_bytes);
  }
  rank.solve_end();
  co_await rank.finalize();
}

sim::Task<> fft_rank(mpirt::Rank& rank, FftParams params) {
  co_await rank.init();
  co_await rank.cart_create();

  const int p = rank.world().size();
  // Pencil → slab transpose: the local grid volume is scattered across all
  // ranks, 1/P of it to each peer.
  const std::uint64_t pair_bytes =
      std::max<std::uint64_t>(1, params.grid_bytes_per_rank /
                                     static_cast<std::uint64_t>(p));

  rank.solve_begin();
  for (int step = 0; step < params.steps; ++step) {
    // Forward: transpose, batch of 1-D FFTs, transpose back. Each
    // transpose is a full alltoall — the densest dependency a collective
    // can impose, and the pattern HACC's SWFFT spends its time in.
    co_await rank.alltoall(pair_bytes);
    co_await rank.compute(params.compute_per_stage);
    co_await rank.alltoall(pair_bytes);

    // Convolution in k-space.
    co_await rank.compute(params.compute_per_stage);

    // Backward pair.
    co_await rank.alltoall(pair_bytes);
    co_await rank.compute(params.compute_per_stage);
    co_await rank.alltoall(pair_bytes);

    // Power-spectrum normalization check.
    co_await rank.allreduce(params.norm_bytes);
  }
  rank.solve_end();
  co_await rank.finalize();
}

}  // namespace pd::apps
