// Elastic CPU repartitioning between the kernels (§8.7).
//
// IHK advertises dynamic reconfiguration, but the seed repo only exercised
// it offline: IhkPartition::grow/shrink_cpus refuse while the LWK is
// booted. This module is the *live* path. A PartitionController moves one
// named core at a time between the Linux service pool and the LWK while
// traffic is in flight:
//
//   shrink (Linux → LWK): the top service CPU's IKC loop is quiesced —
//   it stops claiming, its channels re-shard onto the surviving loops
//   with home-socket affinity preserved, in-flight requests drain — then
//   the Linux kheap drains the core's remote-free queue and re-homes its
//   blocks, the Resource retires a unit (lazily if held), the IHK
//   partition adopts the core, and the LWK schedules it.
//
//   grow (LWK → Linux): the LWK's lowest app core yields (kheap re-home,
//   scheduler removal), leaves the partition, joins the Linux service
//   pool, and a fresh IKC service loop spins up on it.
//
// Both sides keep the prefix invariant: Linux owns exactly [0, count) and
// the transport's loop l serves service CPU l, so cores only join and
// leave at the boundary. The controller can be driven two ways: scripted
// (tests and benches call shrink/grow directly) or closed-loop — a
// monitor coroutine samples the offload queueing p95 every
// `elastic_check_interval`, folds it into an EWMA, and repartitions when
// the EWMA breaches a threshold for `elastic_hysteresis_checks`
// consecutive samples, with an `elastic_cooldown` floor between moves so
// an oscillating load never makes it flap.
#pragma once

#include <cstdint>

#include "src/common/status.hpp"
#include "src/common/time.hpp"
#include "src/os/config.hpp"
#include "src/os/ihk.hpp"
#include "src/os/mckernel.hpp"
#include "src/os/partition.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/task.hpp"

namespace pd::os {

class PartitionController {
 public:
  struct Stats {
    std::uint64_t shrinks = 0;          // service CPUs handed to the LWK
    std::uint64_t grows = 0;            // LWK cores pulled into the pool
    std::uint64_t flap_suppressed = 0;  // breaches ignored (cooldown window)
    std::uint64_t monitor_checks = 0;   // monitor samples taken
    Dur last_quiesce = 0;               // retire_loop() latency, last shrink
    double p95_ewma_us = 0.0;           // current EWMA of the queueing p95
  };

  /// `partition`, when non-null, is the LWK's IHK reservation and tracks
  /// core ownership alongside the kernels (tests without a partition pass
  /// null). The controller only borrows the references; the usual
  /// construction order (kernels → Ihk → controller) keeps them alive.
  PartitionController(sim::Engine& engine, const Config& cfg, Ihk& ihk, McKernel& mck,
                      IhkPartition* partition = nullptr);

  /// --- scripted repartitioning --------------------------------------------
  /// Retire the top `n` Linux service CPUs into the LWK, one at a time.
  /// Each step quiesces the core's IKC loop before the handover. Stops at
  /// the first failure: EBUSY at the `elastic_min_service_cpus` floor.
  sim::Task<Status> shrink_service_cpus(int n = 1);
  /// Pull `n` cores from the LWK into the service pool, one at a time.
  /// EBUSY at the elastic ceiling (`elastic_max_service_cpus`, or the boot
  /// shape when that is 0), or when the LWK would lose its last core.
  sim::Task<Status> grow_service_cpus(int n = 1);

  /// --- closed-loop monitor -------------------------------------------------
  /// Spawn the EWMA/hysteresis monitor (idempotent). It keeps scheduling
  /// wake-ups, so tests must stop_monitor() before expecting the engine to
  /// run dry.
  void start_monitor();
  void stop_monitor() { monitoring_ = false; }
  bool monitoring() const { return monitoring_; }

  int service_cpu_count() const { return ihk_.linux_kernel().service_cpu_count(); }
  /// The grow ceiling actually in force (resolves the 0 = boot-shape knob).
  int max_service_cpus() const;
  const Stats& stats() const { return stats_; }

 private:
  sim::Task<Status> shrink_one();
  sim::Task<Status> grow_one();
  sim::Task<> monitor();

  sim::Engine& engine_;
  const Config& cfg_;
  Ihk& ihk_;
  McKernel& mck_;
  IhkPartition* partition_;
  Stats stats_;
  bool monitoring_ = false;
  bool ewma_seeded_ = false;
  int grow_streak_ = 0;
  int shrink_streak_ = 0;
  Dur cooldown_until_ = 0;
};

}  // namespace pd::os
