// Shared memory-subsystem vocabulary types.
#pragma once

#include <cstdint>

namespace pd::mem {

using PhysAddr = std::uint64_t;
using VirtAddr = std::uint64_t;

constexpr std::uint64_t kPage4K = 4096;
constexpr std::uint64_t kPage2M = 2ull * 1024 * 1024;
constexpr std::uint64_t kPage1G = 1024ull * 1024 * 1024;

constexpr std::uint64_t page_floor(std::uint64_t addr, std::uint64_t page) {
  return addr & ~(page - 1);
}
constexpr std::uint64_t page_ceil(std::uint64_t addr, std::uint64_t page) {
  return (addr + page - 1) & ~(page - 1);
}
constexpr bool page_aligned(std::uint64_t addr, std::uint64_t page) {
  return (addr & (page - 1)) == 0;
}

/// Memory technology of a NUMA domain (KNL: MCDRAM vs DDR4).
enum class MemKind : std::uint8_t { mcdram, ddr };

/// Page protection bits (subset).
enum Prot : std::uint32_t {
  kProtRead = 1u << 0,
  kProtWrite = 1u << 1,
  kProtExec = 1u << 2,
};

}  // namespace pd::mem
