#include "src/hfi/layouts.hpp"

#include <algorithm>
#include <map>

#include "src/dwarf/constants.hpp"
#include "src/dwarf/writer.hpp"

namespace pd::hfi {

namespace {

using dwarf::VersionShift;

std::vector<VersionShift> shifts_for(const std::string& version) {
  if (version == "10.8-0") return {};
  if (version == "10.9-5")
    return {{"sdma_state", 8, 8},        // new tracing member before current_state
            {"hfi1_filedata", 16, 4}};   // widened flags word
  if (version == "11.0-2")
    return {{"sdma_state", 8, 16},
            {"hfi1_filedata", 16, 8},
            {"hfi1_ctxtdata", 24, 8},
            {"sdma_engine", 32, 16}};
  return {};  // caller validated the version
}

bool known_version(const std::string& v) {
  return v == "10.8-0" || v == "10.9-5" || v == "11.0-2";
}

/// Baseline ("10.8-0") layouts. Offsets follow natural alignment with gaps
/// standing in for the many fields the model does not need.
std::vector<StructDef> baseline_structs() {
  std::vector<StructDef> out;

  out.push_back(StructDef{
      "sdma_state",
      64,
      {
          {"goto_count", 0, 8, "u64"},
          {"current_state", 40, 4, "enum sdma_states"},
          {"go_s99_running", 48, 4, "u32"},
          {"previous_state", 52, 4, "enum sdma_states"},
      }});

  out.push_back(StructDef{
      "sdma_engine",
      256,
      {
          {"this_idx", 16, 4, "u32"},
          {"descq_cnt", 24, 4, "u32"},
          {"descq_submitted", 32, 8, "u64"},
          {"state", 64, 64, "struct sdma_state"},
      }});

  out.push_back(StructDef{
      "hfi1_filedata",
      128,
      {
          {"ctxt", 0, 4, "u32"},
          {"subctxt", 4, 2, "u16"},
          {"sdma_engine_idx", 8, 4, "u32"},
          {"flags", 16, 8, "u64"},
          {"tid_used", 40, 8, "u64"},
      }});

  out.push_back(StructDef{
      "hfi1_ctxtdata",
      192,
      {
          {"ctxt", 8, 4, "u32"},
          {"expected_base", 16, 4, "u32"},
          {"expected_count", 20, 4, "u32"},
          {"flags", 24, 8, "u64"},
          {"rcv_egr_count", 48, 8, "u64"},
      }});

  return out;
}

}  // namespace

Result<DriverLayouts> DriverLayouts::for_version(const std::string& version) {
  if (!known_version(version)) return Errno::enoent;
  DriverLayouts layouts;
  layouts.version_ = version;
  layouts.structs_ = baseline_structs();
  dwarf::apply_shifts(layouts.structs_, shifts_for(version));
  return layouts;
}

const StructDef* DriverLayouts::structure(const std::string& name) const {
  auto it = std::find_if(structs_.begin(), structs_.end(),
                         [&](const StructDef& s) { return s.name == name; });
  return it == structs_.end() ? nullptr : &*it;
}

dwarf::ModuleBinary DriverLayouts::ship_module() const {
  using dwarf::InfoBuilder;
  using dwarf::TypeRef;

  InfoBuilder b;
  const TypeRef u16 = b.add_base_type("short unsigned int", 2, dwarf::DW_ATE_unsigned);
  const TypeRef u32 = b.add_base_type("unsigned int", 4, dwarf::DW_ATE_unsigned);
  const TypeRef u64 = b.add_base_type("long unsigned int", 8, dwarf::DW_ATE_unsigned);

  const TypeRef sdma_states =
      b.add_enum("sdma_states", 4,
                 {{"sdma_state_s00_hw_down", 0},
                  {"sdma_state_s10_hw_start_up_halt_wait", 1},
                  {"sdma_state_s15_hw_start_up_clean_wait", 2},
                  {"sdma_state_s20_idle", 3},
                  {"sdma_state_s30_sw_clean_up_wait", 4},
                  {"sdma_state_s40_hw_clean_up_wait", 5},
                  {"sdma_state_s50_hw_halt_wait", 6},
                  {"sdma_state_s60_idle_halt_wait", 7},
                  {"sdma_state_s80_hw_freeze", 8},
                  {"sdma_state_s99_running", 9}});

  std::map<std::string, TypeRef> named_types;  // struct name → ref
  auto type_for = [&](const std::string& type_name) -> TypeRef {
    if (type_name == "u16") return u16;
    if (type_name == "u32") return u32;
    if (type_name == "u64") return u64;
    if (type_name == "enum sdma_states") return sdma_states;
    if (type_name.rfind("struct ", 0) == 0) {
      const std::string sname = type_name.substr(7);
      auto it = named_types.find(sname);
      if (it != named_types.end()) return it->second;
    }
    return u64;  // unreachable for the defined layouts
  };

  // Emit in declaration order so embedded structs resolve (sdma_state is
  // declared before sdma_engine in baseline_structs()).
  for (const auto& s : structs_) {
    std::vector<InfoBuilder::Member> members;
    members.reserve(s.fields.size());
    for (const auto& f : s.fields)
      members.push_back(InfoBuilder::Member{f.name, type_for(f.type_name), f.offset});
    named_types[s.name] = b.add_struct(s.name, s.byte_size, std::move(members));
  }

  // Real modules keep their strings in .debug_str (DW_FORM_strp).
  const dwarf::DebugInfo dbg =
      b.build("Intel(R) OPA driver build " + version_, "hfi1.ko", dwarf::StringForm::strp);

  dwarf::ModuleBinary mod;
  mod.set_version("hfi1 " + version_);
  mod.set_section(".text", std::vector<std::uint8_t>(64, 0x90));  // stub
  mod.set_section(".debug_abbrev", dbg.abbrev);
  mod.set_section(".debug_info", dbg.info);
  mod.set_section(".debug_str", dbg.str);
  return mod;
}

}  // namespace pd::hfi
