#include "src/dwarf/reader.hpp"

#include <sstream>

#include "src/dwarf/constants.hpp"
#include "src/dwarf/leb128.hpp"

namespace pd::dwarf {

namespace {

struct AbbrevAttr {
  std::uint64_t attr;
  std::uint64_t form;
};

struct Abbrev {
  std::uint64_t tag = 0;
  bool has_children = false;
  std::vector<AbbrevAttr> attrs;
};

Result<std::map<std::uint64_t, Abbrev>> parse_abbrev_table(const std::vector<std::uint8_t>& raw) {
  std::map<std::uint64_t, Abbrev> table;
  ByteCursor cur(raw.data(), raw.size());
  while (true) {
    auto code = cur.read_uleb128();
    if (!code) return code.error();
    if (*code == 0) break;  // table terminator
    Abbrev ab;
    auto tag = cur.read_uleb128();
    if (!tag) return tag.error();
    ab.tag = *tag;
    auto children = cur.read_u8();
    if (!children) return children.error();
    ab.has_children = *children != 0;
    while (true) {
      auto attr = cur.read_uleb128();
      if (!attr) return attr.error();
      auto form = cur.read_uleb128();
      if (!form) return form.error();
      if (*attr == 0 && *form == 0) break;
      ab.attrs.push_back(AbbrevAttr{*attr, *form});
    }
    table.emplace(*code, std::move(ab));
  }
  return table;
}

Result<AttrValue> read_form(ByteCursor& cur, std::uint64_t form,
                            const std::vector<std::uint8_t>& str) {
  switch (form) {
    case DW_FORM_data1: {
      auto v = cur.read_u8();
      if (!v) return v.error();
      return AttrValue{static_cast<std::uint64_t>(*v)};
    }
    case DW_FORM_udata: {
      auto v = cur.read_uleb128();
      if (!v) return v.error();
      return AttrValue{*v};
    }
    case DW_FORM_sdata: {
      auto v = cur.read_sleb128();
      if (!v) return v.error();
      return AttrValue{*v};
    }
    case DW_FORM_ref4: {
      auto v = cur.read_u32();
      if (!v) return v.error();
      return AttrValue{static_cast<std::uint64_t>(*v)};
    }
    case DW_FORM_string: {
      auto v = cur.read_cstring();
      if (!v) return v.error();
      return AttrValue{std::move(*v)};
    }
    case DW_FORM_strp: {
      auto off = cur.read_u32();
      if (!off) return off.error();
      if (*off >= str.size()) return Errno::einval;
      ByteCursor sc(str.data(), str.size());
      sc.seek(*off);
      auto v = sc.read_cstring();
      if (!v) return v.error();
      return AttrValue{std::move(*v)};
    }
    case DW_FORM_flag_present:
      return AttrValue{true};
    default:
      return Errno::einval;  // unsupported form
  }
}

std::uint64_t uleb_len(std::uint64_t v) {
  std::uint64_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Recursive-descent DIE parser. `depth` guards against corrupt input
// producing unbounded recursion.
Result<std::unique_ptr<Die>> parse_die(ByteCursor& cur,
                                       const std::map<std::uint64_t, Abbrev>& abbrevs,
                                       const std::vector<std::uint8_t>& str,
                                       std::uint64_t abbrev_code, int depth) {
  if (depth > 64) return Errno::einval;
  auto it = abbrevs.find(abbrev_code);
  if (it == abbrevs.end()) return Errno::einval;
  const Abbrev& ab = it->second;

  auto die = std::make_unique<Die>();
  die->tag = ab.tag;
  for (const auto& spec : ab.attrs) {
    auto value = read_form(cur, spec.form, str);
    if (!value) return value.error();
    die->attrs.emplace_back(spec.attr, std::move(*value));
  }
  if (ab.has_children) {
    while (true) {
      auto code = cur.read_uleb128();
      if (!code) return code.error();
      if (*code == 0) break;  // end of children
      const std::uint64_t child_offset = cur.offset();
      auto child = parse_die(cur, abbrevs, str, *code, depth + 1);
      if (!child) return child.error();
      // The DIE's offset is where its abbrev code begins; re-derive it from
      // the cursor position before the code was read.
      (*child)->offset = child_offset - uleb_len(*code);
      die->children.push_back(std::move(*child));
    }
  }
  return die;
}

void index_dies(const Die& die, std::map<std::uint64_t, const Die*>& by_offset) {
  by_offset.emplace(die.offset, &die);
  for (const auto& child : die.children) index_dies(*child, by_offset);
}

const Die* find_named_rec(const Die& die, std::uint64_t tag, const std::string& name) {
  if (die.tag == tag) {
    auto n = die.name();
    if (n && *n == name) return &die;
  }
  for (const auto& child : die.children) {
    if (const Die* hit = find_named_rec(*child, tag, name)) return hit;
  }
  return nullptr;
}

void collect_tag_rec(const Die& die, std::uint64_t tag, std::vector<const Die*>& out) {
  if (die.tag == tag) out.push_back(&die);
  for (const auto& child : die.children) collect_tag_rec(*child, tag, out);
}

}  // namespace

const AttrValue* Die::find_attr(std::uint64_t attr) const {
  for (const auto& [a, v] : attrs)
    if (a == attr) return &v;
  return nullptr;
}

std::optional<std::string> Die::name() const {
  const AttrValue* v = find_attr(DW_AT_name);
  if (v == nullptr) return std::nullopt;
  if (const auto* s = std::get_if<std::string>(v)) return *s;
  return std::nullopt;
}

std::optional<std::uint64_t> Die::unsigned_attr(std::uint64_t attr) const {
  const AttrValue* v = find_attr(attr);
  if (v == nullptr) return std::nullopt;
  if (const auto* u = std::get_if<std::uint64_t>(v)) return *u;
  if (const auto* s = std::get_if<std::int64_t>(v)) {
    if (*s >= 0) return static_cast<std::uint64_t>(*s);
  }
  return std::nullopt;
}

std::optional<std::int64_t> Die::signed_attr(std::uint64_t attr) const {
  const AttrValue* v = find_attr(attr);
  if (v == nullptr) return std::nullopt;
  if (const auto* s = std::get_if<std::int64_t>(v)) return *s;
  if (const auto* u = std::get_if<std::uint64_t>(v)) return static_cast<std::int64_t>(*u);
  return std::nullopt;
}

Result<DebugInfoView> DebugInfoView::parse(const std::vector<std::uint8_t>& abbrev,
                                           const std::vector<std::uint8_t>& info,
                                           const std::vector<std::uint8_t>& str) {
  auto abbrevs = parse_abbrev_table(abbrev);
  if (!abbrevs) return abbrevs.error();

  ByteCursor cur(info.data(), info.size());
  auto unit_length = cur.read_u32();
  if (!unit_length) return unit_length.error();
  if (*unit_length + 4 > info.size()) return Errno::einval;
  auto version = cur.read_u16();
  if (!version) return version.error();
  if (*version != kDwarfVersion) return Errno::einval;
  auto abbrev_off = cur.read_u32();
  if (!abbrev_off) return abbrev_off.error();
  auto addr_size = cur.read_u8();
  if (!addr_size) return addr_size.error();

  const std::uint64_t cu_offset = cur.offset();
  auto code = cur.read_uleb128();
  if (!code) return code.error();
  if (*code == 0) return Errno::einval;
  auto cu = parse_die(cur, *abbrevs, str, *code, 0);
  if (!cu) return cu.error();
  (*cu)->offset = cu_offset;

  DebugInfoView view;
  view.cu_ = std::move(*cu);
  index_dies(*view.cu_, view.by_offset_);
  return view;
}

const Die* DebugInfoView::at_offset(std::uint64_t offset) const {
  auto it = by_offset_.find(offset);
  return it == by_offset_.end() ? nullptr : it->second;
}

const Die* DebugInfoView::type_of(const Die& die) const {
  auto ref = die.unsigned_attr(DW_AT_type);
  if (!ref) return nullptr;
  return at_offset(*ref);
}

const Die* DebugInfoView::find_named(std::uint64_t tag, const std::string& name) const {
  return find_named_rec(*cu_, tag, name);
}

std::vector<const Die*> DebugInfoView::all_with_tag(std::uint64_t tag) const {
  std::vector<const Die*> out;
  collect_tag_rec(*cu_, tag, out);
  return out;
}

namespace {

const char* attr_name(std::uint64_t attr) {
  switch (attr) {
    case DW_AT_name: return "DW_AT_name";
    case DW_AT_byte_size: return "DW_AT_byte_size";
    case DW_AT_const_value: return "DW_AT_const_value";
    case DW_AT_producer: return "DW_AT_producer";
    case DW_AT_count: return "DW_AT_count";
    case DW_AT_data_member_location: return "DW_AT_data_member_location";
    case DW_AT_declaration: return "DW_AT_declaration";
    case DW_AT_encoding: return "DW_AT_encoding";
    case DW_AT_type: return "DW_AT_type";
  }
  return "DW_AT_<unknown>";
}

void dump_die(const Die& die, int depth, std::ostringstream& out) {
  out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "<0x" << std::hex
      << die.offset << std::dec << "> " << tag_name(die.tag);
  for (const auto& [attr, value] : die.attrs) {
    out << ' ' << attr_name(attr) << '=';
    if (const auto* u = std::get_if<std::uint64_t>(&value))
      out << *u;
    else if (const auto* sgn = std::get_if<std::int64_t>(&value))
      out << *sgn;
    else if (const auto* str = std::get_if<std::string>(&value))
      out << '"' << *str << '"';
    else
      out << "present";
  }
  out << '\n';
  for (const auto& child : die.children) dump_die(*child, depth + 1, out);
}

}  // namespace

std::string DebugInfoView::dump() const {
  std::ostringstream out;
  dump_die(*cu_, 0, out);
  return out.str();
}

}  // namespace pd::dwarf
