// Shared helpers for the paper-reproduction benches.
//
// Every bench binary prints the rows of one table/figure from the paper.
// Set PD_QUICK=1 to trim sweep points (CI-friendly); the default regenerates
// the full figure.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/os/config.hpp"

namespace pd::bench {

inline bool quick_mode() {
  const char* v = std::getenv("PD_QUICK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline void print_banner(const char* figure, const char* paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", figure);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

/// The paper's node-count axis (1..256); quick mode keeps a subset.
inline std::vector<int> node_axis(int max_nodes = 256, int min_nodes = 1) {
  std::vector<int> nodes;
  for (int n = min_nodes; n <= max_nodes; n *= 2) {
    if (quick_mode() && n != min_nodes && n != max_nodes && n != 8) continue;
    nodes.push_back(n);
  }
  return nodes;
}

inline const std::vector<pd::os::OsMode>& all_modes() {
  static const std::vector<pd::os::OsMode> modes = {
      pd::os::OsMode::linux, pd::os::OsMode::mckernel, pd::os::OsMode::mckernel_hfi};
  return modes;
}

}  // namespace pd::bench
