// Extending the framework to a second driver — the paper's future work
// ("we intend to ... port memory registration routines from the Mellanox
// Infiniband driver", §6).
//
// This example builds a miniature "mlx" driver whose slow path registers
// memory regions page by page (get_user_pages + one MTT entry per 4 KiB
// page), ships it with DWARF debug info, and then writes a PicoDriver for
// it in ~80 lines using the same PicoBinding framework the HFI PicoDriver
// uses: bind → extract `mlx_mr_table` offsets → install a fast ioctl that
// walks LWK page tables and programs one MTT entry per contiguous extent.
#include <cstdio>

#include "src/common/units.hpp"
#include "src/dwarf/constants.hpp"
#include "src/dwarf/writer.hpp"
#include "src/mem/phys.hpp"
#include "src/os/process.hpp"
#include "src/pico/framework.hpp"

using namespace pd;
using namespace pd::time_literals;

namespace {

enum MlxIoctl : unsigned long { kRegMr = 0xC101, kDeregMr = 0xC102 };

struct RegMrArgs {
  mem::VirtAddr vaddr = 0;
  std::uint64_t length = 0;
  std::uint32_t mtt_entries = 0;  // out
};

/// The "vendor" driver: registers MRs with one MTT entry per page.
class MlxDriver final : public os::CharDevice {
 public:
  MlxDriver(os::LinuxKernel& linux_kernel) : linux_(linux_kernel) {
    // Driver state image: struct mlx_mr_table { mtt_used; max_mtt; }.
    auto addr = linux_.kheap().kmalloc(64, 0);
    table_ = *addr;
    linux_.register_device(*this);
  }

  std::string dev_name() const override { return "/dev/mlx5_0"; }

  /// Ship the module binary with debug info — the only thing the
  /// PicoDriver is allowed to learn the layout from.
  dwarf::ModuleBinary ship() const {
    dwarf::InfoBuilder b;
    auto u32 = b.add_base_type("unsigned int", 4, dwarf::DW_ATE_unsigned);
    auto u64 = b.add_base_type("long unsigned int", 8, dwarf::DW_ATE_unsigned);
    std::vector<dwarf::InfoBuilder::Member> members;
    members.push_back({"mtt_base", u64, 0});
    members.push_back({"mtt_used", u32, 16});
    members.push_back({"max_mtt", u32, 20});
    b.add_struct("mlx_mr_table", 64, std::move(members));
    auto dbg = b.build("mlx5_core 5.8-1", "mlx5_core.ko");
    dwarf::ModuleBinary mod;
    mod.set_version("mlx5_core 5.8-1");
    mod.set_section(".debug_abbrev", dbg.abbrev);
    mod.set_section(".debug_info", dbg.info);
    return mod;
  }

  mem::PhysAddr table_image() const { return table_; }

  sim::Task<Result<long>> open(os::OpenFile&) override { co_return 0L; }

  sim::Task<Result<long>> ioctl(os::OpenFile& f, unsigned long cmd, void* arg) override {
    if (cmd != kRegMr) co_return Errno::einval;
    auto* args = static_cast<RegMrArgs*>(arg);
    mem::AddressSpace& as = f.proc->as();
    const auto pages = mem::page_ceil(args->length, mem::kPage4K) / mem::kPage4K;
    co_await linux_.engine().delay(static_cast<Dur>(pages) * from_ns(150));  // gup + MTT
    auto pinned = as.get_user_pages(args->vaddr, args->length);
    if (!pinned.ok()) co_return pinned.error();
    args->mtt_entries = static_cast<std::uint32_t>(pinned->frames.size());
    as.put_user_pages(*pinned);  // demo: don't keep the region
    co_return 0L;
  }

  sim::Task<Result<long>> writev(os::OpenFile&, std::span<const os::IoVec>) override {
    co_return Errno::enosys;
  }
  sim::Task<Result<long>> poll(os::OpenFile&) override { co_return 0L; }
  sim::Task<Result<mem::PhysAddr>> mmap(os::OpenFile&, std::uint64_t, std::uint64_t) override {
    co_return Errno::enosys;
  }
  sim::Task<Result<long>> read(os::OpenFile&, std::uint64_t) override { co_return 0L; }
  sim::Task<Result<long>> lseek(os::OpenFile&, long, int) override { co_return 0L; }
  sim::Task<Result<long>> close(os::OpenFile&) override { co_return 0L; }

 private:
  os::LinuxKernel& linux_;
  mem::PhysAddr table_ = 0;
};

}  // namespace

int main() {
  sim::Engine engine;
  os::Config cfg;
  mem::PhysMap phys = mem::PhysMap::knl(512_MiB, 1ull << 30, 2);
  os::LinuxKernel linux_kernel(engine, cfg);
  os::Ihk ihk(engine, cfg, linux_kernel);
  os::McKernel mck(engine, cfg, ihk, /*unified_layout=*/true);
  MlxDriver driver(linux_kernel);

  // --- the whole "mlx PicoDriver" -----------------------------------------
  auto binding = pico::PicoBinding::bind(mck, linux_kernel, driver.ship(),
                                         {{"mlx_mr_table", {"mtt_used", "max_mtt"}}});
  if (!binding.ok()) {
    std::printf("bind failed\n");
    return 1;
  }
  std::printf("bound %s; mtt_used @ offset %llu (from DWARF, not headers)\n",
              binding->driver_version().c_str(),
              static_cast<unsigned long long>(
                  binding->layout("mlx_mr_table")->field("mtt_used")->offset));

  dwarf::FieldAccessor<std::uint32_t> mtt_used(*binding->layout("mlx_mr_table")
                                                    ->field("mtt_used"));
  std::uint32_t fast_entries = 0;
  os::FastPathOps ops;
  ops.ioctl_handles = [](unsigned long cmd) { return cmd == kRegMr; };
  ops.ioctl = [&](os::OpenFile& f, unsigned long, void* arg) -> sim::Task<Result<long>> {
    auto* args = static_cast<RegMrArgs*>(arg);
    mem::AddressSpace& as = f.proc->as();
    // LWK fast path: pinned-by-policy memory, page-table walk, one MTT
    // entry per physically contiguous extent.
    auto extents = as.physical_extents(args->vaddr, args->length, mem::kPage2M);
    if (!extents.ok()) co_return extents.error();
    co_await mck.engine().delay(static_cast<Dur>(extents->size()) * from_ns(150));
    args->mtt_entries = static_cast<std::uint32_t>(extents->size());
    fast_entries += args->mtt_entries;
    // Update the shared driver table through the extracted offset.
    auto bytes = linux_kernel.kheap().data(driver.table_image());
    mtt_used.write(bytes.data(), mtt_used.read(bytes.data()) + args->mtt_entries);
    co_return 0L;
  };
  mck.register_fastpath(driver, std::move(ops));

  // --- exercise both paths -------------------------------------------------
  os::Process lwk_proc(mck, phys, 0, 0, 11);
  sim::spawn(engine, [](os::Process& proc, MlxDriver& drv) -> sim::Task<> {
    auto fd = co_await proc.open(drv.dev_name());
    auto buf = co_await proc.mmap_anon(8_MiB);
    RegMrArgs args;
    args.vaddr = *buf;
    args.length = 8_MiB;
    auto r = co_await proc.ioctl(*fd, kRegMr, &args);
    std::printf("LWK fast-path reg_mr(8 MiB): rc=%ld, MTT entries=%u "
                "(Linux path would use %llu)\n",
                r.ok() ? *r : -1L, args.mtt_entries,
                static_cast<unsigned long long>(8_MiB / mem::kPage4K));
  }(lwk_proc, driver));
  engine.run();

  auto bytes = linux_kernel.kheap().data(driver.table_image());
  std::printf("driver's mlx_mr_table.mtt_used (read back via DWARF offset): %u\n",
              mtt_used.read(bytes.data()));
  std::printf("\nThat is the whole recipe: ship debug info, bind, install a fast path.\n");
  return 0;
}
