# Empty dependencies file for pd_psm.
# This may be replaced when dependencies are built.
