// The HFI PicoDriver: LWK fast paths for SDMA send (writev) and expected-
// receive registration (the three TID ioctls) — the < 3 K SLOC the paper
// ports, everything else stays on the offload path.
//
// The fast paths differ from the Linux driver's in exactly the §3.4 ways:
//   * no get_user_pages: LWK anonymous memory is pinned at mmap time, so
//     the driver walks page tables directly (cheaper per page);
//   * descriptors up to the hardware's 10 KiB, built from physically
//     contiguous extents (large pages make those common on the LWK);
//   * completion metadata lives in the *McKernel* heap; the completion
//     callback is a duplicated copy in LWK TEXT whose deallocation routine
//     is McKernel's (§3.3) — it runs on a Linux CPU and routes the free
//     through the remote-free queue.
//
// All driver state it touches (sdma_engine/sdma_state images, filedata,
// ctxtdata) is read and written through DWARF-extracted offsets only.
#pragma once

#include <cstdint>
#include <memory>

#include "src/hfi/driver.hpp"
#include "src/pico/framework.hpp"

namespace pd::pico {

class HfiPicoDriver {
 public:
  /// Bind against the driver's shipped module and install the fast paths
  /// into the LWK. Fails (forwarding PicoBinding::bind errors) when the
  /// LWK booted with the original VA layout, on lock-ABI mismatch, or when
  /// the module's debug info lacks a required structure.
  static Result<std::unique_ptr<HfiPicoDriver>> create(os::McKernel& mck,
                                                       hfi::HfiDriver& driver);

  const PicoBinding& binding() const { return binding_; }
  hfi::HfiDriver& driver() { return driver_; }

  /// Per-rank initialization cost (kernel-level mapping setup); PSM calls
  /// this from its init path — the extra MPI_Init time in Table 1.
  sim::Task<> rank_init();

  /// --- fast paths (installed via McKernel::register_fastpath) ------------
  sim::Task<Result<long>> fast_writev(os::OpenFile& f, std::span<const os::IoVec> iov);
  sim::Task<Result<long>> fast_ioctl(os::OpenFile& f, unsigned long cmd, void* arg);

  /// --- instrumentation ----------------------------------------------------
  std::uint64_t fast_writevs() const { return fast_writevs_; }
  std::uint64_t fast_tid_updates() const { return fast_tid_updates_; }
  std::uint64_t fast_tid_frees() const { return fast_tid_frees_; }
  std::uint64_t fallbacks() const { return fallbacks_; }
  std::uint64_t remote_frees_drained() const { return drained_total_; }

 private:
  HfiPicoDriver(PicoBinding binding, os::McKernel& mck, hfi::HfiDriver& driver);

  /// Read the engine's current sdma_state through extracted offsets.
  hfi::SdmaStates engine_state(int engine_id) const;
  int lwk_cpu_for(const os::Process& proc) const;

  PicoBinding binding_;
  os::McKernel& mck_;
  hfi::HfiDriver& driver_;

  dwarf::FieldAccessor<std::uint32_t> eng_this_idx_;
  dwarf::FieldAccessor<std::uint64_t> eng_descq_submitted_;
  std::uint64_t state_offset_in_engine_ = 0;   // sdma_engine.state
  dwarf::FieldAccessor<std::uint32_t> state_current_;
  dwarf::FieldAccessor<std::uint32_t> fd_engine_idx_;
  dwarf::FieldAccessor<std::uint64_t> fd_tid_used_;
  dwarf::FieldAccessor<std::uint32_t> cd_expected_count_;

  std::uint64_t fast_writevs_ = 0;
  std::uint64_t fast_tid_updates_ = 0;
  std::uint64_t fast_tid_frees_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t drained_total_ = 0;
};

}  // namespace pd::pico
