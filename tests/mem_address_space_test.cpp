// Tests for AddressSpace: the Linux-vs-LWK backing policies, pinning,
// get_user_pages, and physical-extent discovery (the §3.4 mechanism).
#include <gtest/gtest.h>

#include "src/common/units.hpp"
#include "src/mem/address_space.hpp"

namespace pd::mem {
namespace {

PhysMap small_map() { return PhysMap::knl(64_MiB, 256_MiB, 1); }

constexpr VirtAddr kMmapBase = 0x0000'2000'0000ull;

TEST(AddressSpaceLinux, MmapBacksEveryPage) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_anonymous(64_KiB, kProtRead | kProtWrite);
  ASSERT_TRUE(va.ok());
  for (std::uint64_t off = 0; off < 64_KiB; off += kPage4K)
    EXPECT_TRUE(as.translate(*va + off).has_value());
}

TEST(AddressSpaceLinux, PagesAreScattered) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_anonymous(1_MiB, kProtRead | kProtWrite);
  ASSERT_TRUE(va.ok());
  // Count adjacent virtual pages that are also physically adjacent; the
  // shuffled backing should make this rare (Linux host after uptime).
  int contiguous = 0, total = 0;
  for (std::uint64_t off = kPage4K; off < 1_MiB; off += kPage4K) {
    const auto prev = as.translate(*va + off - kPage4K);
    const auto cur = as.translate(*va + off);
    ASSERT_TRUE(prev && cur);
    ++total;
    if (prev->pa + kPage4K == cur->pa) ++contiguous;
  }
  EXPECT_LT(contiguous, total / 4) << "Linux policy should scatter frames";
}

TEST(AddressSpaceLinux, NotPinnedUntilGetUserPages) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_anonymous(16_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(as.pinned_frame_count(), 0u);
  auto pages = as.get_user_pages(*va, 16_KiB);
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(pages->frames.size(), 4u);
  EXPECT_EQ(as.pinned_frame_count(), 4u);
  as.put_user_pages(*pages);
  EXPECT_EQ(as.pinned_frame_count(), 0u);
}

TEST(AddressSpaceLinux, GetUserPagesUnmappedFaults) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_anonymous(8_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  // Walk past the end of the VMA.
  auto pages = as.get_user_pages(*va, 16_KiB);
  EXPECT_EQ(pages.error(), Errno::efault);
  EXPECT_EQ(as.pinned_frame_count(), 0u) << "partial pins must be released";
}

TEST(AddressSpaceLwk, LargePagesUsedForBigMappings) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto va = as.mmap_anonymous(8_MiB, kProtRead | kProtWrite);
  ASSERT_TRUE(va.ok());
  auto t = as.translate(*va);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->page, kPage2M);
  EXPECT_GT(as.large_page_fraction(), 0.9);
}

TEST(AddressSpaceLwk, MappingsArePinnedAtCreation) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto va = as.mmap_anonymous(2_MiB, kProtRead | kProtWrite);
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(as.pinned_frame_count(), 2_MiB / kPage4K);
  auto t = as.translate(*va);
  EXPECT_TRUE(as.is_pinned(t->pa));
  // munmap is the user-requested operation that releases the pin.
  ASSERT_TRUE(as.munmap(*va, 2_MiB).ok());
  EXPECT_EQ(as.pinned_frame_count(), 0u);
}

TEST(AddressSpaceLwk, PhysicallyContiguousBacking) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto va = as.mmap_anonymous(4_MiB, kProtRead | kProtWrite);
  ASSERT_TRUE(va.ok());
  auto extents = as.physical_extents(*va, 4_MiB, 0);
  ASSERT_TRUE(extents.ok());
  // A fresh buddy pool should back 4 MiB with very few contiguous runs.
  EXPECT_LE(extents->size(), 2u);
}

TEST(PhysicalExtents, RespectsMaxExtent) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto va = as.mmap_anonymous(64_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  const std::uint64_t kMax = 10240;  // the HFI 10 KiB SDMA descriptor cap
  auto extents = as.physical_extents(*va, 64_KiB, kMax);
  ASSERT_TRUE(extents.ok());
  std::uint64_t total = 0;
  for (const auto& e : *extents) {
    EXPECT_LE(e.len, kMax);
    total += e.len;
  }
  EXPECT_EQ(total, 64_KiB);
  // Contiguous backing → ceil(65536/10240) = 7 descriptors, vs 16 at 4 KiB.
  EXPECT_EQ(extents->size(), 7u);
}

TEST(PhysicalExtents, LinuxScatterYieldsPageGrainExtents) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_anonymous(64_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  auto extents = as.physical_extents(*va, 64_KiB, 10240);
  ASSERT_TRUE(extents.ok());
  // Mostly single-page extents.
  EXPECT_GE(extents->size(), 12u);
}

TEST(PhysicalExtents, UnmappedRangeFaults) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  EXPECT_EQ(as.physical_extents(0xDEAD000, 4096, 0).error(), Errno::efault);
}

TEST(AddressSpace, MunmapExactVmaOnly) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_anonymous(16_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(as.munmap(*va + kPage4K, 4_KiB).error(), Errno::einval);
  EXPECT_TRUE(as.munmap(*va, 16_KiB).ok());
  EXPECT_FALSE(as.translate(*va).has_value());
  EXPECT_EQ(as.vma_count(), 0u);
}

TEST(AddressSpace, MunmapReturnsMemoryToPhysMap) {
  PhysMap phys = small_map();
  const std::uint64_t before = phys.free_bytes(MemKind::ddr) + phys.free_bytes(MemKind::mcdram);
  {
    AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
    auto va = as.mmap_anonymous(8_MiB, kProtRead);
    ASSERT_TRUE(va.ok());
    ASSERT_TRUE(as.munmap(*va, 8_MiB).ok());
  }
  const std::uint64_t after = phys.free_bytes(MemKind::ddr) + phys.free_bytes(MemKind::mcdram);
  EXPECT_EQ(before, after);
}

TEST(AddressSpace, DeviceMappingDoesNotConsumePhys) {
  PhysMap phys = small_map();
  const std::uint64_t before = phys.free_bytes(MemKind::mcdram) + phys.free_bytes(MemKind::ddr);
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_device(0xF000'0000ull, 64_KiB, kProtRead | kProtWrite);
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(phys.free_bytes(MemKind::mcdram) + phys.free_bytes(MemKind::ddr), before);
  auto t = as.translate(*va + 0x10);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->pa, 0xF000'0010ull);
}

TEST(AddressSpace, FindVma) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_anonymous(16_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  const Vma* vma = as.find_vma(*va + 100);
  ASSERT_NE(vma, nullptr);
  EXPECT_EQ(vma->start, *va);
  EXPECT_EQ(as.find_vma(*va + 64_KiB), nullptr);
}

}  // namespace
}  // namespace pd::mem
