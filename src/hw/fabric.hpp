// Fabric model: N node ports connected through a single full-bisection
// switch (OmniPath-style director). Each port serializes egress and
// ingress traffic at link rate in FIFO order; the switch adds a fixed
// traversal latency. Egress of transfer k+1 overlaps ingress of transfer
// k, so a single stream sustains link rate while incast still queues at
// the destination port.
//
// Ports are modelled with busy-until timestamps rather than coroutines:
// one chunk costs exactly two scheduled events, which keeps 256-node ×
// 8192-rank runs tractable.
// Under a sharded engine (one shard per node) a chunk costs three events:
// the cross-shard hop lands on the destination shard at head arrival —
// always >= send-time + wire_latency, i.e. outside the lookahead window —
// and the ingress busy-window reservation happens there, in arrival order.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/time.hpp"
#include "src/sim/engine.hpp"
#include "src/hw/wire.hpp"

namespace pd::hw {

struct FabricConfig {
  double link_bytes_per_sec = 12.3e9;  // 100 Gb/s OmniPath, protocol-efficient rate
  Dur wire_latency = 600'000;          // 600 ns port-to-port through the switch
  Dur per_chunk_overhead = 90'000;     // 90 ns packetization/header cost per packet
};

/// Delivery callback: invoked on the destination node when a chunk has
/// fully arrived through the ingress port.
using ChunkSink = std::function<void(const WireChunk&)>;

class Fabric {
 public:
  Fabric(sim::Engine& engine, int num_nodes, FabricConfig config = {});

  /// The NIC of `node` registers its receive path here.
  void attach(int node, ChunkSink sink);

  /// Enqueue a chunk for transmission. Returns immediately; the chunk is
  /// serialized through the source port in FIFO order. `on_egress` (may be
  /// null) fires when the last byte has left the source port — that is the
  /// moment the source-side SDMA engine is free and completion can be
  /// signalled locally.
  void send(WireChunk chunk, std::function<void()> on_egress = nullptr);

  /// Wire time of one packet of `bytes` (overhead + serialization).
  Dur serialize_time(std::uint64_t bytes) const;

  const FabricConfig& config() const { return config_; }
  std::uint64_t chunks_sent() const { return chunks_sent_.load(std::memory_order_relaxed); }
  std::uint64_t bytes_sent() const { return bytes_sent_.load(std::memory_order_relaxed); }

 private:
  struct Port {
    Time egress_free_at = 0;
    Time ingress_free_at = 0;
    ChunkSink sink;
  };

  sim::Engine& engine_;
  FabricConfig config_;
  std::vector<Port> ports_;
  // Atomic: sends originate from every shard when the engine is sharded.
  std::atomic<std::uint64_t> chunks_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
};

}  // namespace pd::hw
