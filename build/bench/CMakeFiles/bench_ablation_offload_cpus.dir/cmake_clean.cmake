file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_offload_cpus.dir/bench_ablation_offload_cpus.cpp.o"
  "CMakeFiles/bench_ablation_offload_cpus.dir/bench_ablation_offload_cpus.cpp.o.d"
  "bench_ablation_offload_cpus"
  "bench_ablation_offload_cpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_offload_cpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
