
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/fabric.cpp" "src/hw/CMakeFiles/pd_hw.dir/fabric.cpp.o" "gcc" "src/hw/CMakeFiles/pd_hw.dir/fabric.cpp.o.d"
  "/root/repo/src/hw/hfi_device.cpp" "src/hw/CMakeFiles/pd_hw.dir/hfi_device.cpp.o" "gcc" "src/hw/CMakeFiles/pd_hw.dir/hfi_device.cpp.o.d"
  "/root/repo/src/hw/rcv_array.cpp" "src/hw/CMakeFiles/pd_hw.dir/rcv_array.cpp.o" "gcc" "src/hw/CMakeFiles/pd_hw.dir/rcv_array.cpp.o.d"
  "/root/repo/src/hw/sdma.cpp" "src/hw/CMakeFiles/pd_hw.dir/sdma.cpp.o" "gcc" "src/hw/CMakeFiles/pd_hw.dir/sdma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pd_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
