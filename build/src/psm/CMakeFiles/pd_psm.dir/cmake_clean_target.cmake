file(REMOVE_RECURSE
  "libpd_psm.a"
)
