// Structure extraction from DWARF debug info (paper §3.2).
//
// Given the debug info of a "shipped" driver module, a structure name, and
// the list of fields the LWK fast path touches, produce:
//
//   * a `StructLayout` — machine-readable offsets/sizes the PicoDriver
//     binds its field accessors to at runtime, and
//   * a generated C header in the paper's Listing-1 style: an unnamed union
//     of a whole-struct-sized char array plus, per field, an anonymous
//     struct of `char paddingN[offset]` followed by the field declaration.
//
// The point (as in the paper) is that nothing here depends on the driver's
// headers: layout knowledge comes exclusively from the binary's debug info,
// so driver updates only require re-running the extraction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.hpp"
#include "src/dwarf/reader.hpp"

namespace pd::dwarf {

/// One extracted field.
struct FieldLayout {
  std::string name;
  std::uint64_t offset = 0;     // bytes from struct start
  std::uint64_t size = 0;       // sizeof(field / storage unit)
  std::string type_decl;        // C declaration, e.g. "enum sdma_states current_state"
  // Bitfield members: width and LSB offset inside the storage unit at
  // `offset`; bit_size == 0 for ordinary fields.
  std::uint32_t bit_size = 0;
  std::uint32_t bit_offset = 0;

  bool is_bitfield() const { return bit_size > 0; }
};

/// Machine-readable extraction result.
struct StructLayout {
  std::string struct_name;
  std::uint64_t byte_size = 0;
  std::vector<FieldLayout> fields;

  const FieldLayout* field(const std::string& name) const;
};

/// Extract the named fields of `struct_name` from parsed debug info.
/// Fails with ENOENT if the struct or any requested field is missing,
/// EINVAL if the debug info is malformed for a needed type.
Result<StructLayout> extract_struct(const DebugInfoView& view, const std::string& struct_name,
                                    const std::vector<std::string>& fields);

/// Render the Listing-1 style header for an extracted layout. Auxiliary
/// declarations (enum definitions, forward struct declarations) referenced
/// by the extracted fields are emitted above the struct.
std::string generate_header(const DebugInfoView& view, const StructLayout& layout);

/// Convenience: extract + generate in one step.
Result<std::string> extract_struct_header(const DebugInfoView& view,
                                          const std::string& struct_name,
                                          const std::vector<std::string>& fields);

/// Runtime accessor bound to an extracted field: reads/writes a value of
/// type T at the extracted offset inside a raw structure image. This is how
/// the LWK-side PicoDriver touches Linux driver state without the driver's
/// headers.
template <typename T>
class FieldAccessor {
 public:
  FieldAccessor() = default;
  explicit FieldAccessor(const FieldLayout& layout) : offset_(layout.offset), bound_(true) {}

  bool bound() const { return bound_; }
  std::uint64_t offset() const { return offset_; }

  T read(const void* struct_base) const {
    T value;
    __builtin_memcpy(&value, static_cast<const std::uint8_t*>(struct_base) + offset_, sizeof(T));
    return value;
  }

  void write(void* struct_base, const T& value) const {
    __builtin_memcpy(static_cast<std::uint8_t*>(struct_base) + offset_, &value, sizeof(T));
  }

 private:
  std::uint64_t offset_ = 0;
  bool bound_ = false;
};

/// Accessor for an extracted bitfield: reads/writes the `bit_size`-wide
/// value at `bit_offset` within the storage unit of type T at the field's
/// byte offset.
template <typename T>
class BitfieldAccessor {
 public:
  BitfieldAccessor() = default;
  explicit BitfieldAccessor(const FieldLayout& layout)
      : offset_(layout.offset), bit_offset_(layout.bit_offset),
        bit_size_(layout.bit_size), bound_(layout.is_bitfield()) {}

  bool bound() const { return bound_; }

  T read(const void* struct_base) const {
    T unit;
    __builtin_memcpy(&unit, static_cast<const std::uint8_t*>(struct_base) + offset_,
                     sizeof(T));
    return static_cast<T>((unit >> bit_offset_) & mask());
  }

  void write(void* struct_base, T value) const {
    T unit;
    auto* p = static_cast<std::uint8_t*>(struct_base) + offset_;
    __builtin_memcpy(&unit, p, sizeof(T));
    unit = static_cast<T>((unit & ~(mask() << bit_offset_)) |
                          ((value & mask()) << bit_offset_));
    __builtin_memcpy(p, &unit, sizeof(T));
  }

 private:
  T mask() const { return static_cast<T>((T{1} << bit_size_) - 1); }

  std::uint64_t offset_ = 0;
  std::uint32_t bit_offset_ = 0;
  std::uint32_t bit_size_ = 0;
  bool bound_ = false;
};

}  // namespace pd::dwarf
