# CLI smoke test for dwarf-extract-struct: ship a demo module, extract a
# header, dump the DIE tree, and check the expected content is present.
set(mod "${CMAKE_CURRENT_BINARY_DIR}/cli_test_hfi1.ko")

execute_process(COMMAND "${TOOL}" --ship-demo 10.9-5 "${mod}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--ship-demo failed: ${rc}")
endif()

execute_process(COMMAND "${TOOL}" "${mod}" sdma_state current_state go_s99_running
                OUTPUT_VARIABLE header RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "extraction failed: ${rc}")
endif()
foreach(needle "whole_struct[72]" "enum sdma_states current_state" "padding0[48]")
  string(FIND "${header}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "generated header missing '${needle}':\n${header}")
  endif()
endforeach()

execute_process(COMMAND "${TOOL}" --dump "${mod}" OUTPUT_VARIABLE dump RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--dump failed: ${rc}")
endif()
string(FIND "${dump}" "DW_TAG_structure_type" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "dump missing structure tag")
endif()

# Unknown struct must fail with a nonzero exit code.
execute_process(COMMAND "${TOOL}" "${mod}" no_such_struct field ERROR_QUIET
                OUTPUT_QUIET RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "extraction of a missing struct must fail")
endif()
file(REMOVE "${mod}")
