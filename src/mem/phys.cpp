#include "src/mem/phys.hpp"

#include <algorithm>
#include <cassert>

namespace pd::mem {

BuddyAllocator::BuddyAllocator(PhysAddr base, std::uint64_t size)
    : base_(base), free_lists_(kMaxOrder - kMinOrder + 1) {
  assert(page_aligned(base, kPage4K));
  assert(page_aligned(size, kPage4K));
  // The buddy math runs over a power-of-two span starting at base_; memory
  // beyond `size` within that span is simply never put on a free list.
  span_ = std::uint64_t(1) << order_for(size);
  capacity_ = 0;

  // Seed free lists greedily with the largest aligned blocks that fit.
  PhysAddr cur = base;
  std::uint64_t remaining = size;
  while (remaining >= kPage4K) {
    int order = kMaxOrder;
    while (order > kMinOrder &&
           ((std::uint64_t(1) << order) > remaining ||
            !page_aligned(cur - base, std::uint64_t(1) << order))) {
      --order;
    }
    const std::uint64_t block = std::uint64_t(1) << order;
    insert_block(order, cur);
    capacity_ += block;
    free_total_ += block;
    cur += block;
    remaining -= block;
  }
}

int BuddyAllocator::order_for(std::uint64_t bytes) {
  int order = kMinOrder;
  while ((std::uint64_t(1) << order) < bytes && order < kMaxOrder) ++order;
  return order;
}

std::optional<PhysAddr> BuddyAllocator::take_block(int order) {
  auto& list = free_lists_[order - kMinOrder];
  if (list.empty()) return std::nullopt;
  const PhysAddr addr = list.back();
  list.pop_back();
  return addr;
}

void BuddyAllocator::insert_block(int order, PhysAddr addr) {
  free_lists_[order - kMinOrder].push_back(addr);
}

bool BuddyAllocator::remove_block(int order, PhysAddr addr) {
  auto& list = free_lists_[order - kMinOrder];
  auto it = std::find(list.begin(), list.end(), addr);
  if (it == list.end()) return false;
  *it = list.back();
  list.pop_back();
  return true;
}

Result<PhysAddr> BuddyAllocator::alloc_order(int order) {
  if (order < kMinOrder || order > kMaxOrder) return Errno::einval;
  // Find the smallest available block at or above the requested order.
  int have = order;
  while (have <= kMaxOrder && free_lists_[have - kMinOrder].empty()) ++have;
  if (have > kMaxOrder) return Errno::enomem;

  PhysAddr addr = *take_block(have);
  // Split down to the requested order, returning buddies to the lists.
  while (have > order) {
    --have;
    insert_block(have, addr + (std::uint64_t(1) << have));
  }
  free_total_ -= std::uint64_t(1) << order;
  return addr;
}

Result<PhysAddr> BuddyAllocator::alloc(std::uint64_t bytes) {
  return alloc_order(order_for(bytes));
}

void BuddyAllocator::free(PhysAddr addr, int order) {
  assert(order >= kMinOrder && order <= kMaxOrder);
  assert(contains(addr));
  // Only the block being returned adds to the free total; coalesced
  // buddies were already counted when they were freed.
  free_total_ += std::uint64_t(1) << order;
  // Coalesce with the buddy while it is free.
  while (order < kMaxOrder) {
    const std::uint64_t block = std::uint64_t(1) << order;
    const PhysAddr buddy = base_ + (((addr - base_) ^ block));
    if (!remove_block(order, buddy)) break;
    addr = std::min(addr, buddy);
    ++order;
  }
  insert_block(order, addr);
}

PhysMap PhysMap::knl(std::uint64_t mcdram_bytes, std::uint64_t ddr_bytes, int numa_per_kind) {
  PhysMap map;
  // MCDRAM domains first (preferred), then DDR; bases spaced far apart so
  // cross-domain contiguity never occurs by accident.
  constexpr PhysAddr kDomainStride = 1ull << 40;  // 1 TiB apart
  PhysAddr base = 0x0000'0001'0000'0000ull;       // skip legacy low memory
  for (int i = 0; i < numa_per_kind; ++i) {
    map.add_domain("mcdram" + std::to_string(i), MemKind::mcdram, base,
                   mcdram_bytes / numa_per_kind);
    base += kDomainStride;
  }
  for (int i = 0; i < numa_per_kind; ++i) {
    map.add_domain("ddr" + std::to_string(i), MemKind::ddr, base, ddr_bytes / numa_per_kind);
    base += kDomainStride;
  }
  return map;
}

void PhysMap::add_domain(std::string name, MemKind kind, PhysAddr base, std::uint64_t size) {
  domains_.push_back(NumaDomain{std::move(name), kind, BuddyAllocator(base, size)});
}

Result<PhysAddr> PhysMap::alloc(std::uint64_t bytes, MemKind preferred) {
  // Two passes: preferred kind first (round-robin for balance), then any.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < domains_.size(); ++i) {
      auto& dom = domains_[(next_preferred_ + i) % domains_.size()];
      const bool match = (dom.kind == preferred);
      if (pass == 0 ? !match : match) continue;
      auto r = dom.allocator.alloc(bytes);
      if (r.ok()) {
        if (pass == 0) next_preferred_ = (next_preferred_ + i + 1) % domains_.size();
        return r;
      }
    }
  }
  return Errno::enomem;
}

Result<PhysAddr> PhysMap::alloc_near(std::uint64_t bytes, std::size_t home_domain) {
  if (home_domain >= domains_.size()) return Errno::einval;
  auto& home = domains_[home_domain];
  if (auto r = home.allocator.alloc(bytes); r.ok()) return r;
  // Home exhausted: same-kind siblings first (stay in the fast tier),
  // then any domain at all.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < domains_.size(); ++i) {
      if (i == home_domain) continue;
      auto& dom = domains_[i];
      const bool match = (dom.kind == home.kind);
      if (pass == 0 ? !match : match) continue;
      if (auto r = dom.allocator.alloc(bytes); r.ok()) return r;
    }
  }
  return Errno::enomem;
}

std::optional<std::size_t> PhysMap::domain_of(PhysAddr addr) const {
  for (std::size_t i = 0; i < domains_.size(); ++i)
    if (domains_[i].allocator.contains(addr)) return i;
  return std::nullopt;
}

void PhysMap::free(PhysAddr addr, std::uint64_t bytes) {
  for (auto& dom : domains_) {
    if (dom.allocator.contains(addr)) {
      dom.allocator.free_bytes(addr, bytes);
      return;
    }
  }
  assert(false && "free of address outside every domain");
}

std::uint64_t PhysMap::free_bytes(MemKind kind) const {
  std::uint64_t total = 0;
  for (const auto& dom : domains_)
    if (dom.kind == kind) total += dom.allocator.free_bytes_total();
  return total;
}

}  // namespace pd::mem
