file(REMOVE_RECURSE
  "CMakeFiles/property_mem_test.dir/property_mem_test.cpp.o"
  "CMakeFiles/property_mem_test.dir/property_mem_test.cpp.o.d"
  "property_mem_test"
  "property_mem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
