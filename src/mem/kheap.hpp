// Kernel heap with per-core slab free lists and cross-kernel free handling
// (paper §3.3).
//
// McKernel's allocator keeps per-core free lists, so kfree() must know
// which CPU it runs on. An SDMA completion IRQ, however, executes on a
// *Linux* CPU while freeing LWK-allocated metadata. The original allocator
// would fail there; the PicoDriver extension detects the foreign CPU and
// routes the block to a remote-free queue that the owning core drains.
//
// Steady-state fast-path allocations (the 192-byte completion metadata per
// SDMA send) are served from per-core size-class free lists: a block freed
// on its owner core — or drained from the remote queue — parks on the
// core's magazine for that size class, and the next kmalloc() of the class
// pops it back in O(1) with no host allocation. Only cold allocations and
// sizes above the largest class touch the host heap.
//
// Blocks carry real host bytes (`data()`): the simulated driver keeps its
// structure images in them, and the LWK reads those images through
// DWARF-extracted offsets — so the cross-kernel pointer story is exercised
// with actual memory, not just bookkeeping.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/status.hpp"
#include "src/mem/types.hpp"

namespace pd::mem {

/// Policy for kfree() called on a CPU outside the owning kernel's set.
enum class ForeignFreePolicy {
  fail,          // original McKernel: allocator is per-core, call fails
  remote_queue,  // PicoDriver extension: enqueue for the owning core
};

class KernelHeap {
 public:
  struct Stats {
    std::uint64_t allocs = 0;
    std::uint64_t local_frees = 0;
    std::uint64_t remote_frees = 0;    // routed through the remote queue
    std::uint64_t rejected_frees = 0;  // failed under ForeignFreePolicy::fail
    std::uint64_t bytes_live = 0;
    std::uint64_t slab_reuses = 0;     // kmalloc served from a per-core magazine
    std::uint64_t slab_recycles = 0;   // freed blocks parked on a magazine
    std::uint64_t host_allocs = 0;     // kmalloc that had to touch the host heap
  };

  /// Size classes served by the per-core magazines; anything larger falls
  /// back to a direct host allocation (and is returned to the host on free).
  static constexpr std::array<std::uint64_t, 8> kSizeClasses = {64,  128,  192,  256,
                                                                512, 1024, 2048, 4096};

  /// `owned_cpus`: logical CPU ids this kernel's allocator may run on.
  /// `heap_base`: simulated physical base of the heap arena.
  /// `slab_enabled`: turn the per-core magazines off to model the original
  /// map-per-block allocator (used by the before/after bench).
  KernelHeap(std::vector<int> owned_cpus, ForeignFreePolicy policy,
             PhysAddr heap_base = 0x0000'00F0'0000'0000ull, bool slab_enabled = true);

  /// Allocate `size` bytes on behalf of `cpu` (must be an owned CPU).
  /// Returns the simulated physical address of the block.
  Result<PhysAddr> kmalloc(std::uint64_t size, int cpu);

  /// Free from any CPU. Foreign CPUs follow the configured policy.
  Status kfree(PhysAddr addr, int cpu);

  /// Drain this core's remote-free queue (the owning kernel calls this
  /// periodically, e.g. on its scheduler tick). The whole queue is recycled
  /// in one batch and every block lands back on its owner's magazine.
  /// Returns blocks reclaimed.
  std::size_t drain_remote_frees(int cpu);

  /// Host-memory view of a live block (empty when not allocated).
  std::span<std::uint8_t> data(PhysAddr addr);

  bool owns_cpu(int cpu) const;
  std::size_t remote_queue_depth(int cpu) const;
  const Stats& stats() const { return stats_; }
  std::size_t live_blocks() const { return live_blocks_; }
  /// Blocks parked on `cpu`'s magazines across all size classes.
  std::size_t magazine_depth(int cpu) const;

 private:
  struct Block {
    std::uint64_t size = 0;     // requested size (what data() exposes)
    std::uint64_t capacity = 0; // size-class bytes actually backing it
    int owner_cpu = -1;         // core whose magazine the block belongs to
    bool live = false;
    std::unique_ptr<std::uint8_t[]> bytes;
  };

  /// Index into kSizeClasses, or kSizeClasses.size() when oversized.
  static std::size_t class_for(std::uint64_t size);
  void park_on_magazine(PhysAddr addr, Block& block);

  std::vector<int> owned_cpus_;
  ForeignFreePolicy policy_;
  PhysAddr next_addr_;
  bool slab_enabled_;
  std::size_t live_blocks_ = 0;
  std::unordered_map<PhysAddr, Block> blocks_;
  // Per owned CPU: one free-list magazine per size class.
  std::unordered_map<int, std::array<std::vector<PhysAddr>, kSizeClasses.size()>> magazines_;
  std::map<int, std::deque<PhysAddr>> remote_free_queues_;  // keyed by owner cpu
  Stats stats_;
};

}  // namespace pd::mem
