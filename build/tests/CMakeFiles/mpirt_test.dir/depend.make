# Empty dependencies file for mpirt_test.
# This may be replaced when dependencies are built.
