# Empty dependencies file for pd_os.
# This may be replaced when dependencies are built.
