// Collective-algorithm equivalence properties (ISSUE 10).
//
// Each mpirt collective algorithm must be message-equivalent to its
// textbook reference: for a world of P single-rank nodes (so the leader
// phase IS the whole collective), every rank's posted message and byte
// totals must match what the algorithm's specification says, and every
// rank must run to completion. References are computed independently here
// from the textbook shapes (dissemination, MPICH recursive doubling with
// the non-power-of-two fold, ring reduce-scatter+allgather, binomial
// trees, pipelined chains, spread/pairwise alltoall).
//
// Also pinned: the size/leader-count crossover picks the intended
// algorithm (checked both through the pure selection functions and through
// the per-call algorithm tags recorded into MpiStats), and hierarchical
// (rpn > 1) and odd-shaped worlds complete under every forced algorithm.
//
// Determinism: fixed default seed, overridable with PD_PROPERTY_SEED; a
// failure prints the seed. Run with `ctest -L property` (also `-L noise`:
// this is the collective-algorithm half of the noise-study machinery).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/mpirt/world.hpp"

namespace pd::mpirt {
namespace {

using namespace pd::time_literals;

std::uint64_t harness_seed() {
  if (const char* env = std::getenv("PD_PROPERTY_SEED"); env != nullptr && *env != '\0')
    return std::strtoull(env, nullptr, 0);
  return 0xC0117EC7ull;
}

std::string repro(std::uint64_t seed) {
  return "\n  reproduce with PD_PROPERTY_SEED=" + std::to_string(seed);
}

struct Traffic {
  std::uint64_t smsgs = 0, sbytes = 0, rmsgs = 0, rbytes = 0;
  bool operator==(const Traffic&) const = default;
};

std::ostream& operator<<(std::ostream& os, const Traffic& t) {
  return os << "{s " << t.smsgs << "/" << t.sbytes << " r " << t.rmsgs << "/"
            << t.rbytes << "}";
}

ClusterOptions small_cluster(int nodes) {
  ClusterOptions o;
  o.nodes = nodes;
  o.mcdram_bytes = 256ull << 20;
  o.ddr_bytes = 1ull << 30;
  return o;
}

/// Run `coll` once on a P-node, 1-rank-per-node world with the given
/// tuning and return each rank's message/byte traffic attributable to it.
std::vector<Traffic> measure(int P, const CollectiveTuning& tuning,
                             const std::function<sim::Task<>(Rank&)>& coll) {
  Cluster cluster(small_cluster(P));
  WorldOptions wopts;
  wopts.ranks_per_node = 1;
  wopts.buf_bytes = 8ull << 20;
  wopts.tuning = tuning;
  MpiWorld world(cluster, wopts);
  std::vector<Traffic> out(static_cast<std::size_t>(P));
  int done = 0;
  world.run([&](Rank& rank) -> sim::Task<> {
    co_await rank.init();
    co_await rank.barrier();  // quiesce init-time traffic
    const Traffic before{rank.sent_msgs(), rank.sent_bytes(), rank.recvd_msgs(),
                         rank.recvd_bytes()};
    co_await coll(rank);
    out[static_cast<std::size_t>(rank.id())] =
        Traffic{rank.sent_msgs() - before.smsgs, rank.sent_bytes() - before.sbytes,
                rank.recvd_msgs() - before.rmsgs, rank.recvd_bytes() - before.rbytes};
    co_await rank.finalize();
    ++done;
  });
  EXPECT_EQ(done, P);
  return out;
}

// ---------------------------------------------------------------------------
// Textbook reference models (per-rank totals, world of P leaders).
// ---------------------------------------------------------------------------

std::vector<Traffic> ref_dissemination(int P, std::uint64_t bytes) {
  std::uint64_t rounds = 0;
  for (int step = 1; step < P; step <<= 1) ++rounds;
  std::vector<Traffic> t(static_cast<std::size_t>(P));
  for (auto& r : t) r = {rounds, rounds * bytes, rounds, rounds * bytes};
  return t;
}

std::vector<Traffic> ref_recursive_doubling(int P, std::uint64_t bytes) {
  std::vector<Traffic> t(static_cast<std::size_t>(P));
  if (P < 2) return t;
  int pow2 = 1;
  while (pow2 * 2 <= P) pow2 *= 2;
  const int rem = P - pow2;
  std::uint64_t rounds = 0;
  for (int mask = 1; mask < pow2; mask <<= 1) ++rounds;
  for (int v = 0; v < P; ++v) {
    Traffic& r = t[static_cast<std::size_t>(v)];
    bool exchanges = true;
    if (v < 2 * rem) {
      // Fold: odd vnodes hand their vector to the even partner and sit out
      // the exchange, receiving the result back in the unfold.
      if (v & 1) {
        r.smsgs += 1;
        r.rmsgs += 1;
        exchanges = false;
      } else {
        r.rmsgs += 1;
        r.smsgs += 1;
      }
    }
    if (exchanges) {
      r.smsgs += rounds;
      r.rmsgs += rounds;
    }
    r.sbytes = r.smsgs * bytes;
    r.rbytes = r.rmsgs * bytes;
  }
  return t;
}

std::vector<Traffic> ref_ring(int P, std::uint64_t bytes) {
  std::vector<Traffic> t(static_cast<std::size_t>(P));
  if (P < 2) return t;
  const std::uint64_t chunk =
      (bytes + static_cast<std::uint64_t>(P) - 1) / static_cast<std::uint64_t>(P);
  const auto steps = static_cast<std::uint64_t>(2 * (P - 1));
  for (auto& r : t) r = {steps, steps * chunk, steps, steps * chunk};
  return t;
}

/// Binomial tree rooted at vnode 0: the standard mask walk.
std::vector<Traffic> ref_binomial_bcast(int P, std::uint64_t bytes) {
  std::vector<Traffic> t(static_cast<std::size_t>(P));
  for (int v = 0; v < P; ++v) {
    Traffic& r = t[static_cast<std::size_t>(v)];
    int mask = 1;
    while (mask < P) {
      if (v & mask) {
        r.rmsgs += 1;  // receive from v - mask, then forward below
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (v + mask < P && (v & mask) == 0) r.smsgs += 1;
      mask >>= 1;
    }
    r.sbytes = r.smsgs * bytes;
    r.rbytes = r.rmsgs * bytes;
  }
  return t;
}

std::vector<Traffic> ref_binomial_reduce(int P, std::uint64_t bytes) {
  std::vector<Traffic> t(static_cast<std::size_t>(P));
  for (int v = 0; v < P; ++v) {
    Traffic& r = t[static_cast<std::size_t>(v)];
    int mask = 1;
    while (mask < P) {
      if (v & mask) {
        r.smsgs += 1;  // partial sum toward the root, then done
        break;
      }
      if (v + mask < P) r.rmsgs += 1;
      mask <<= 1;
    }
    r.sbytes = r.smsgs * bytes;
    r.rbytes = r.rmsgs * bytes;
  }
  return t;
}

/// Pipelined chain (bcast: root streams down; reduce: leaves stream up).
/// Every link carries the full payload once, in ceil(bytes/seg) segments.
std::vector<Traffic> ref_chain(int P, std::uint64_t bytes, std::uint64_t seg_bytes,
                               bool toward_root) {
  std::vector<Traffic> t(static_cast<std::size_t>(P));
  if (P < 2) return t;
  const std::uint64_t seg =
      std::max<std::uint64_t>(1, std::min(seg_bytes, bytes));
  const std::uint64_t nseg = (bytes + seg - 1) / seg;
  for (int v = 0; v < P; ++v) {
    Traffic& r = t[static_cast<std::size_t>(v)];
    const bool has_prev = v > 0;        // link toward the root/head
    const bool has_next = v + 1 < P;    // link toward the tail
    const bool sends = toward_root ? has_prev : has_next;
    const bool recvs = toward_root ? has_next : has_prev;
    if (sends) r = {nseg, bytes, r.rmsgs, r.rbytes};
    if (recvs) {
      r.rmsgs = nseg;
      r.rbytes = bytes;
    }
  }
  return t;
}

std::vector<Traffic> ref_alltoall(int P, std::uint64_t bytes_per_pair) {
  std::vector<Traffic> t(static_cast<std::size_t>(P));
  const auto peers = static_cast<std::uint64_t>(P - 1);
  for (auto& r : t)
    r = {peers, peers * bytes_per_pair, peers, peers * bytes_per_pair};
  return t;
}

void expect_traffic_eq(const std::vector<Traffic>& got,
                       const std::vector<Traffic>& want, const std::string& what,
                       std::uint64_t seed) {
  ASSERT_EQ(got.size(), want.size()) << what << repro(seed);
  for (std::size_t v = 0; v < got.size(); ++v)
    EXPECT_EQ(got[v], want[v]) << what << " rank " << v << repro(seed);
}

// ---------------------------------------------------------------------------
// Property: each algorithm ≡ its textbook reference.
// ---------------------------------------------------------------------------

std::vector<int> world_shapes(Rng& rng) {
  // Powers of two, odd sizes, and a seeded extra so the non-power-of-two
  // folds and ragged rings get fresh shapes every seed.
  return {2, 3, 4, 8, 5 + static_cast<int>(rng.next_below(6))};
}

TEST(CollectiveEquivalence, AllreduceAlgorithmsMatchTextbook) {
  const std::uint64_t seed = harness_seed();
  Rng rng(seed);
  for (int P : world_shapes(rng)) {
    const std::uint64_t bytes = 1 + rng.next_below(64_KiB);
    for (const char* algo : {"dissemination", "recursive_doubling", "ring"}) {
      CollectiveTuning tuning;
      tuning.force_allreduce = algo;
      auto got = measure(P, tuning, [bytes](Rank& r) { return r.allreduce(bytes); });
      const auto want = std::string(algo) == "ring"
                            ? ref_ring(P, bytes)
                            : (std::string(algo) == "recursive_doubling"
                                   ? ref_recursive_doubling(P, bytes)
                                   : ref_dissemination(P, bytes));
      expect_traffic_eq(got, want,
                        "allreduce/" + std::string(algo) + " P=" + std::to_string(P) +
                            " bytes=" + std::to_string(bytes),
                        seed);
    }
  }
}

TEST(CollectiveEquivalence, BcastAlgorithmsMatchTextbook) {
  const std::uint64_t seed = harness_seed();
  Rng rng(seed);
  for (int P : world_shapes(rng)) {
    const std::uint64_t bytes = 1 + rng.next_below(256_KiB);
    CollectiveTuning tuning;
    tuning.force_bcast = "binomial";
    auto got = measure(P, tuning, [bytes](Rank& r) { return r.bcast(0, bytes); });
    expect_traffic_eq(got, ref_binomial_bcast(P, bytes),
                      "bcast/binomial P=" + std::to_string(P), seed);

    tuning.force_bcast = "chain";
    tuning.chain_segment_bytes = 1 + rng.next_below(32_KiB);
    got = measure(P, tuning, [bytes](Rank& r) { return r.bcast(0, bytes); });
    expect_traffic_eq(
        got, ref_chain(P, bytes, tuning.chain_segment_bytes, /*toward_root=*/false),
        "bcast/chain P=" + std::to_string(P) + " seg=" +
            std::to_string(tuning.chain_segment_bytes),
        seed);
  }
}

TEST(CollectiveEquivalence, ReduceAlgorithmsMatchTextbook) {
  const std::uint64_t seed = harness_seed();
  Rng rng(seed);
  for (int P : world_shapes(rng)) {
    const std::uint64_t bytes = 1 + rng.next_below(256_KiB);
    CollectiveTuning tuning;
    tuning.force_reduce = "binomial";
    auto got = measure(P, tuning, [bytes](Rank& r) { return r.reduce(0, bytes); });
    expect_traffic_eq(got, ref_binomial_reduce(P, bytes),
                      "reduce/binomial P=" + std::to_string(P), seed);

    tuning.force_reduce = "chain";
    tuning.chain_segment_bytes = 1 + rng.next_below(32_KiB);
    got = measure(P, tuning, [bytes](Rank& r) { return r.reduce(0, bytes); });
    expect_traffic_eq(
        got, ref_chain(P, bytes, tuning.chain_segment_bytes, /*toward_root=*/true),
        "reduce/chain P=" + std::to_string(P), seed);
  }
}

TEST(CollectiveEquivalence, AlltoallAlgorithmsMatchTextbook) {
  const std::uint64_t seed = harness_seed();
  Rng rng(seed);
  for (int P : world_shapes(rng)) {
    const std::uint64_t bytes = 1 + rng.next_below(16_KiB);
    for (const char* algo : {"spread", "pairwise"}) {
      CollectiveTuning tuning;
      tuning.force_alltoall = algo;
      auto got = measure(P, tuning, [bytes](Rank& r) { return r.alltoall(bytes); });
      expect_traffic_eq(got, ref_alltoall(P, bytes),
                        "alltoall/" + std::string(algo) + " P=" + std::to_string(P),
                        seed);
    }
  }
}

// ---------------------------------------------------------------------------
// The size/rank-count crossover picks the intended algorithm.
// ---------------------------------------------------------------------------

TEST(CollectiveCrossover, SelectionFunctionsHonorSizeAndShape) {
  Cluster cluster(small_cluster(8));
  WorldOptions wopts;
  wopts.ranks_per_node = 1;
  MpiWorld world(cluster, wopts);
  const CollectiveTuning t;  // defaults

  // Allreduce ladder: latency-bound -> vector -> bandwidth-bound.
  EXPECT_STREQ(world.allreduce_algo(8), "dissemination");
  EXPECT_STREQ(world.allreduce_algo(t.allreduce_rd_bytes - 1), "dissemination");
  EXPECT_STREQ(world.allreduce_algo(t.allreduce_rd_bytes), "recursive_doubling");
  EXPECT_STREQ(world.allreduce_algo(t.allreduce_ring_bytes - 1),
               "recursive_doubling");
  EXPECT_STREQ(world.allreduce_algo(t.allreduce_ring_bytes), "ring");

  // Bcast / reduce: binomial until the payload fills a pipeline.
  EXPECT_STREQ(world.bcast_algo(64_KiB), "binomial");
  EXPECT_STREQ(world.bcast_algo(t.bcast_chain_bytes), "chain");
  EXPECT_STREQ(world.reduce_algo(64_KiB), "binomial");
  EXPECT_STREQ(world.reduce_algo(t.reduce_chain_bytes), "chain");

  // Alltoall: spread posts up to the SDMA threshold, pairwise beyond.
  EXPECT_STREQ(world.alltoall_algo(4_KiB, 64_KiB), "spread");
  EXPECT_STREQ(world.alltoall_algo(64_KiB, 64_KiB), "spread");
  EXPECT_STREQ(world.alltoall_algo(64_KiB + 1, 64_KiB), "pairwise");

  // Small communicators must not pick the scale-dependent algorithms.
  Cluster small(small_cluster(2));
  MpiWorld narrow(small, wopts);
  EXPECT_STREQ(narrow.allreduce_algo(t.allreduce_ring_bytes),
               "recursive_doubling");  // < ring_min_leaders
  EXPECT_STREQ(narrow.bcast_algo(t.bcast_chain_bytes), "binomial");
}

TEST(CollectiveCrossover, RecordedAlgoTagsMatchTheSelection) {
  Cluster cluster(small_cluster(4));
  WorldOptions wopts;
  wopts.ranks_per_node = 2;
  wopts.buf_bytes = 8ull << 20;
  wopts.tuning.allreduce_ring_min_leaders = 4;
  MpiWorld world(cluster, wopts);
  world.run([](Rank& rank) -> sim::Task<> {
    co_await rank.init();
    co_await rank.allreduce(64);                                  // dissemination
    co_await rank.allreduce(4_KiB);                               // recursive doubling
    co_await rank.allreduce(512_KiB);                             // ring
    co_await rank.allreduce(512_KiB);                             // ring again
    co_await rank.alltoall(1_KiB);                                // spread
    co_await rank.alltoall(128_KiB);                              // pairwise
    co_await rank.finalize();
  });
  const MpiStatsTable table = world.stats_table();
  const std::uint64_t P = 8;  // every rank tags every collective call
  EXPECT_EQ(table.algo_count("Allreduce", "dissemination"), P);
  EXPECT_EQ(table.algo_count("Allreduce", "recursive_doubling"), P);
  EXPECT_EQ(table.algo_count("Allreduce", "ring"), 2 * P);
  EXPECT_EQ(table.algo_count("Alltoall", "spread"), P);
  EXPECT_EQ(table.algo_count("Alltoall", "pairwise"), P);
  EXPECT_EQ(table.algo_count("Allreduce", "no_such_algo"), 0u);
}

// ---------------------------------------------------------------------------
// Hierarchical and odd-shaped worlds complete under every forced algorithm.
// ---------------------------------------------------------------------------

TEST(CollectiveCompletion, HierarchicalOddShapesCompleteUnderEveryAlgorithm) {
  const std::uint64_t seed = harness_seed();
  Rng rng(seed ^ 0xD1CEull);
  struct Shape {
    int nodes;
    int rpn;
  };
  const Shape shapes[] = {{3, 3}, {5, 2}, {4, 1 + static_cast<int>(rng.next_below(4))}};
  for (const Shape& s : shapes) {
    for (const char* algo : {"dissemination", "recursive_doubling", "ring"}) {
      Cluster cluster(small_cluster(s.nodes));
      WorldOptions wopts;
      wopts.ranks_per_node = s.rpn;
      wopts.buf_bytes = 8ull << 20;
      wopts.tuning.force_allreduce = algo;
      wopts.tuning.force_bcast = "chain";
      wopts.tuning.force_reduce = "chain";
      MpiWorld world(cluster, wopts);
      int done = 0;
      const std::uint64_t bytes = 1 + rng.next_below(128_KiB);
      world.run([&](Rank& rank) -> sim::Task<> {
        co_await rank.init();
        co_await rank.allreduce(bytes);
        co_await rank.bcast(1 % world.size(), bytes);
        co_await rank.reduce(0, bytes);
        co_await rank.alltoall(1 + bytes / 16);
        co_await rank.barrier();
        co_await rank.finalize();
        ++done;
      });
      EXPECT_EQ(done, s.nodes * s.rpn)
          << algo << " nodes=" << s.nodes << " rpn=" << s.rpn << repro(seed);
    }
  }
}

}  // namespace
}  // namespace pd::mpirt
