file(REMOVE_RECURSE
  "CMakeFiles/kernel_space_test.dir/kernel_space_test.cpp.o"
  "CMakeFiles/kernel_space_test.dir/kernel_space_test.cpp.o.d"
  "kernel_space_test"
  "kernel_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
