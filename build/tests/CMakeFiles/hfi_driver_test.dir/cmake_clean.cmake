file(REMOVE_RECURSE
  "CMakeFiles/hfi_driver_test.dir/hfi_driver_test.cpp.o"
  "CMakeFiles/hfi_driver_test.dir/hfi_driver_test.cpp.o.d"
  "hfi_driver_test"
  "hfi_driver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfi_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
