#include "src/os/profiler.hpp"

#include <algorithm>

namespace pd::os {

std::vector<SyscallProfiler::Row> SyscallProfiler::rows(std::size_t top) const {
  std::vector<Row> out;
  const double total_us = to_us(total_);
  for (const auto& [name, stats] : calls_) {
    Row row;
    row.name = name;
    row.total_us = stats.sum();
    row.count = stats.count();
    row.share = total_us > 0 ? stats.sum() / total_us : 0.0;
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const Row& a, const Row& b) { return a.total_us > b.total_us; });
  if (top != 0 && out.size() > top) out.resize(top);
  return out;
}

double SyscallProfiler::share_of(const std::string& name) const {
  auto it = calls_.find(name);
  if (it == calls_.end() || total_ == 0) return 0.0;
  return it->second.sum() / to_us(total_);
}

double SyscallProfiler::total_us_of(const std::string& name) const {
  auto it = calls_.find(name);
  return it == calls_.end() ? 0.0 : it->second.sum();
}

std::uint64_t SyscallProfiler::count_of(const std::string& name) const {
  auto it = calls_.find(name);
  return it == calls_.end() ? 0 : it->second.count();
}

std::uint64_t SyscallProfiler::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t SyscallProfiler::sum_counters(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it)
    total += it->second;
  return total;
}

void SyscallProfiler::merge(const SyscallProfiler& other) {
  for (const auto& [name, stats] : other.calls_) calls_[name].merge(stats);
  for (const auto& [name, n] : other.counters_) counters_[name] += n;
  total_ += other.total_;
}

}  // namespace pd::os
