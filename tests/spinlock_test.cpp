// Tests for the §3.3 cross-kernel shared spin-lock: FIFO ordering,
// contention accounting, and real serialization between the Linux driver
// path and the PicoDriver fast path on the same SDMA engine lock.
#include <gtest/gtest.h>

#include "src/common/units.hpp"
#include "src/hfi/driver.hpp"
#include "src/os/spinlock.hpp"
#include "src/pico/hfi_picodriver.hpp"

#define CO_ASSERT_TRUE(cond)                          \
  do {                                                \
    const bool co_assert_ok_ = static_cast<bool>(cond); \
    EXPECT_TRUE(co_assert_ok_) << #cond;              \
    if (!co_assert_ok_) co_return;                    \
  } while (0)

namespace pd {
namespace {

using namespace pd::time_literals;

TEST(SharedSpinlock, UncontendedCostOnly) {
  sim::Engine engine;
  os::SharedSpinlock lock(engine, "abi-x", from_ns(60));
  Time done = -1;
  sim::spawn(engine, [](sim::Engine& e, os::SharedSpinlock& l, Time& out) -> sim::Task<> {
    co_await l.acquire();
    out = e.now();
    l.release();
  }(engine, lock, done));
  engine.run();
  EXPECT_EQ(done, from_ns(60));
  EXPECT_EQ(lock.acquisitions(), 1u);
  EXPECT_EQ(lock.contended_acquisitions(), 0u);
}

TEST(SharedSpinlock, ContendersSerializeFifo) {
  sim::Engine engine;
  os::SharedSpinlock lock(engine, "abi-x", from_ns(60));
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim::spawn(engine, [](sim::Engine& e, os::SharedSpinlock& l, int id,
                          std::vector<int>& out) -> sim::Task<> {
      co_await e.delay(static_cast<Dur>(id));  // deterministic arrival order
      co_await l.acquire();
      co_await e.delay(10_us);  // hold
      out.push_back(id);
      l.release();
    }(engine, lock, i, order));
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(lock.acquisitions(), 4u);
  EXPECT_EQ(lock.contended_acquisitions(), 3u);
  EXPECT_GT(lock.total_spin_us(), 10.0 + 20.0 + 29.0);  // 10+20+30 us of spinning
}

TEST(SharedSpinlock, LockedReflectsState) {
  sim::Engine engine;
  os::SharedSpinlock lock(engine, "abi-x", 0);
  EXPECT_FALSE(lock.locked());
  sim::spawn(engine, [](sim::Engine& e, os::SharedSpinlock& l) -> sim::Task<> {
    co_await l.acquire();
    co_await e.delay(1_us);
    l.release();
  }(engine, lock));
  engine.run_until(500'000);  // mid-hold
  EXPECT_TRUE(lock.locked());
  engine.run();
  EXPECT_FALSE(lock.locked());
}

// Cross-kernel serialization: a Linux-native rank and an LWK fast-path
// rank hammer the SAME engine lock; the lock must see contention and both
// sides must complete.
TEST(SharedSpinlock, LinuxAndPicoContendOnTheSameEngineLock) {
  sim::Engine engine;
  os::Config cfg;
  hw::Fabric fabric(engine, 2);
  mem::PhysMap phys = mem::PhysMap::knl(512ull << 20, 1ull << 30, 2);
  hw::HfiDevice device(engine, fabric, 0), peer(engine, fabric, 1);
  os::LinuxKernel linux_kernel(engine, cfg);
  hfi::HfiDriver driver(linux_kernel, device, "10.8-0");
  os::Ihk ihk(engine, cfg, linux_kernel);
  os::McKernel mck(engine, cfg, ihk, true);
  auto pico = pico::HfiPicoDriver::create(mck, driver);
  ASSERT_TRUE(pico.ok());
  peer.open_context(0);
  peer.open_context(1);

  // Both files must land on the same engine: open assigns engines round
  // robin from the device, so force it by re-picking until aligned.
  os::Process linux_proc(linux_kernel, phys, 0, 0, 1);
  os::Process lwk_proc(mck, phys, 0, 1, 2);

  auto hammer = [](os::Process& proc, hw::HfiDevice& dev, int dst_ctxt,
                   int iters) -> sim::Task<> {
    (void)dev;
    auto fd = co_await proc.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await proc.mmap_anon(1ull << 20);
    CO_ASSERT_TRUE(buf.ok());
    for (int i = 0; i < iters; ++i) {
      hfi::SdmaReqHeader hdr;
      hdr.wire.src_node = 0;
      hdr.wire.dst_node = 1;
      hdr.wire.dst_ctxt = dst_ctxt;
      hdr.wire.src_ctxt = proc.ctxt();
      hdr.wire.kind = hw::WireKind::eager;
      hdr.wire.seq = 100 + static_cast<std::uint64_t>(i);
      std::vector<os::IoVec> iov{
          os::IoVec{reinterpret_cast<mem::VirtAddr>(&hdr), sizeof hdr},
          os::IoVec{*buf, 256ull << 10}};
      auto r = co_await proc.writev(*fd, std::move(iov));
      CO_ASSERT_TRUE(r.ok());
    }
  };
  sim::spawn(engine, hammer(linux_proc, device, 0, 8));
  sim::spawn(engine, hammer(lwk_proc, device, 1, 8));
  engine.run();

  // Both contexts opened in order, so filedata engine assignment is
  // engine 0 then engine 1; with 16 engines they normally differ — the
  // meaningful check is aggregate: someone contended somewhere iff they
  // shared, and in all cases every acquisition completed and balanced.
  std::uint64_t acq = 0;
  for (int e = 0; e < device.num_engines(); ++e) {
    acq += driver.engine_lock(e).acquisitions();
    EXPECT_FALSE(driver.engine_lock(e).locked()) << "lock leaked on engine " << e;
  }
  EXPECT_EQ(acq, 16u);
  EXPECT_EQ((*pico)->fast_writevs(), 8u);
  EXPECT_EQ(driver.writev_calls(), 8u);
}

TEST(SharedSpinlock, SameEngineForcedContention) {
  // Pin both paths to engine 0 by rewriting the LWK file's engine index
  // through the driver's own layout view, then verify real contention.
  sim::Engine engine;
  os::Config cfg;
  hw::Fabric fabric(engine, 2);
  mem::PhysMap phys = mem::PhysMap::knl(512ull << 20, 1ull << 30, 2);
  hw::HfiDevice device(engine, fabric, 0), peer(engine, fabric, 1);
  os::LinuxKernel linux_kernel(engine, cfg);
  hfi::HfiDriver driver(linux_kernel, device, "10.8-0");
  os::Ihk ihk(engine, cfg, linux_kernel);
  os::McKernel mck(engine, cfg, ihk, true);
  auto pico = pico::HfiPicoDriver::create(mck, driver);
  ASSERT_TRUE(pico.ok());
  peer.open_context(0);
  peer.open_context(1);

  os::Process linux_proc(linux_kernel, phys, 0, 0, 1);
  os::Process lwk_proc(mck, phys, 0, 1, 2);

  // Issue all writevs *concurrently* (one detached task each) so the two
  // kernels' submission critical sections are guaranteed to overlap.
  auto one_writev = [&engine, &linux_kernel, &driver](os::Process& proc, int fd,
                                                      mem::VirtAddr buf, int dst_ctxt,
                                                      int i) -> sim::Task<> {
    hfi::SdmaReqHeader hdr;
    hdr.wire.src_node = 0;
    hdr.wire.dst_node = 1;
    hdr.wire.dst_ctxt = dst_ctxt;
    hdr.wire.src_ctxt = proc.ctxt();
    hdr.wire.kind = hw::WireKind::eager;
    hdr.wire.seq = 100 + static_cast<std::uint64_t>(i);
    std::vector<os::IoVec> iov{
        os::IoVec{reinterpret_cast<mem::VirtAddr>(&hdr), sizeof hdr},
        os::IoVec{buf, 256ull << 10}};
    auto r = co_await proc.writev(fd, std::move(iov));
    CO_ASSERT_TRUE(r.ok());
    (void)engine;
    (void)linux_kernel;
    (void)driver;
  };
  auto hammer = [&](os::Process& proc, int dst_ctxt) -> sim::Task<> {
    auto fd = co_await proc.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    // Force engine 0 through the driver's layout (simulating the shared
    // filedata state both kernels can write).
    auto bytes = linux_kernel.kheap().data(driver.filedata_image(*proc.file(*fd)));
    hfi::StructImage img(bytes, driver.layouts().structure("hfi1_filedata"));
    img.write<std::uint32_t>("sdma_engine_idx", 0);
    auto buf = co_await proc.mmap_anon(4ull << 20);
    CO_ASSERT_TRUE(buf.ok());
    for (int i = 0; i < 8; ++i)
      sim::spawn(proc.kernel().engine(), one_writev(proc, *fd, *buf, dst_ctxt, i));
  };
  sim::spawn(engine, hammer(linux_proc, 0));
  sim::spawn(engine, hammer(lwk_proc, 1));
  engine.run();

  auto& lock0 = driver.engine_lock(0);
  EXPECT_EQ(lock0.acquisitions(), 16u) << "both kernels must use engine 0's lock";
  EXPECT_GT(lock0.contended_acquisitions(), 0u)
      << "cross-kernel contention must actually occur";
  EXPECT_FALSE(lock0.locked());
}

}  // namespace
}  // namespace pd
