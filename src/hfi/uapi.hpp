// User-space ABI of the simulated HFI1 driver (what PSM calls).
//
// Mirrors the shape of the real driver interface (paper §2.2.2): writev()
// with a metadata first-vector for SDMA sends, and ioctl() commands of
// which exactly three concern expected-receive (TID) registration — those
// three are what the PicoDriver fast-paths.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/hw/wire.hpp"
#include "src/mem/types.hpp"

namespace pd::hfi {

inline constexpr const char* kDeviceName = "/dev/hfi1_0";

/// ioctl command numbers (subset of the real driver's dozen-plus).
enum IoctlCmd : unsigned long {
  // Expected-receive registration — the fast-path trio (paper §2.2.2).
  kTidUpdate = 0xB101,    // register user buffers, program RcvArray
  kTidFree = 0xB102,      // unregister by TID list
  kTidInvalRead = 0xB103, // read invalidation events

  // Administrative commands that always stay on the Linux path.
  kCtxtInfo = 0xB110,
  kUserInfo = 0xB111,
  kRecvCtrl = 0xB112,
  kPollType = 0xB113,
  kAckEvent = 0xB114,
  kSetPkey = 0xB115,
  kCtxtReset = 0xB116,
  kGetVers = 0xB117,
};

inline bool is_tid_cmd(unsigned long cmd) {
  return cmd == kTidUpdate || cmd == kTidFree || cmd == kTidInvalRead;
}

/// Contents of writev()'s first I/O vector: request metadata. The model
/// carries the wire header and a host-side completion hook (standing in
/// for the completion-queue entry the real PSM polls).
struct SdmaReqHeader {
  hw::WireMessage wire;                 // routing + matching + payload size
  std::function<void()> on_complete;    // fired from the completion IRQ path
};

/// kTidUpdate argument: in = user buffer range, out = programmed TIDs.
struct TidUpdateArgs {
  mem::VirtAddr vaddr = 0;
  std::uint64_t length = 0;
  std::vector<std::uint32_t> tids;  // out
};

/// kTidFree argument.
struct TidFreeArgs {
  std::vector<std::uint32_t> tids;
};

}  // namespace pd::hfi
