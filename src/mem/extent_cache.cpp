#include "src/mem/extent_cache.hpp"

#include <algorithm>

namespace pd::mem {

Result<std::span<const PhysExtent>> ExtentCache::lookup(const AddressSpace& as, VirtAddr va,
                                                        std::uint64_t len,
                                                        std::uint64_t max_extent,
                                                        Outcome* outcome) {
  ++tick_;
  Entry* entry = nullptr;
  for (Entry& e : entries_)
    if (e.va == va && e.len == len && e.max_extent == max_extent) {
      entry = &e;
      break;
    }

  if (entry != nullptr && entry->generation == as.map_generation()) {
    ++stats_.hits;
    entry->last_used = tick_;
    if (outcome != nullptr) *outcome = Outcome::hit;
    return std::span<const PhysExtent>(entry->extents);
  }

  const Outcome miss_kind = entry == nullptr ? Outcome::miss : Outcome::invalidated;
  if (entry == nullptr) {
    if (entries_.size() < capacity_) {
      entry = &entries_.emplace_back();
    } else {
      // Evict the least-recently-used slot; its vector capacity is reused.
      entry = &*std::min_element(entries_.begin(), entries_.end(),
                                 [](const Entry& a, const Entry& b) {
                                   return a.last_used < b.last_used;
                                 });
    }
    entry->va = va;
    entry->len = len;
    entry->max_extent = max_extent;
  }

  Status walked = as.physical_extents(va, len, max_extent, entry->extents);
  if (!walked.ok()) {
    // Keep the slot but poison the key so a later success does not alias.
    entry->va = 0;
    entry->len = 0;
    return walked.error();
  }
  entry->generation = as.map_generation();
  entry->last_used = tick_;
  if (miss_kind == Outcome::miss)
    ++stats_.misses;
  else
    ++stats_.invalidations;
  if (outcome != nullptr) *outcome = miss_kind;
  return std::span<const PhysExtent>(entry->extents);
}

}  // namespace pd::mem
