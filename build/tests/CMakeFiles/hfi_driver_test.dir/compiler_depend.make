# Empty compiler generated dependencies file for hfi_driver_test.
# This may be replaced when dependencies are built.
