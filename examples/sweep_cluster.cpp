// The paper experience in one run: the UMT2013 sweep proxy on 4 nodes in
// all three OS configurations, with relative performance and the MPI_Wait
// blow-up that motivated PicoDriver (paper §4.3, Table 1 / Figure 6a).
#include <cstdio>

#include "src/apps/proxies.hpp"

using namespace pd;

int main() {
  apps::UmtParams umt;
  std::printf("UMT2013 sweep proxy, 4 nodes x %d ranks\n\n", apps::kUmtRpn);

  double linux_sec = 0;
  for (os::OsMode mode :
       {os::OsMode::linux, os::OsMode::mckernel, os::OsMode::mckernel_hfi}) {
    mpirt::ClusterOptions copts;
    copts.nodes = 4;
    copts.mode = mode;
    copts.mcdram_bytes = 1ull << 30;
    copts.ddr_bytes = 2ull << 30;
    mpirt::WorldOptions wopts;
    wopts.ranks_per_node = apps::kUmtRpn;
    wopts.buf_bytes = 1ull << 20;

    const auto out =
        apps::run_app(copts, wopts, [umt](mpirt::Rank& r) { return apps::umt_rank(r, umt); });
    if (mode == os::OsMode::linux) linux_sec = out.runtime_sec;

    std::printf("--- %s ---\n", to_string(mode));
    std::printf("solve: %.4f s  (%.1f%% of Linux performance)\n", out.runtime_sec,
                100.0 * linux_sec / out.runtime_sec);
    const auto* wait = out.mpi.row("Wait");
    const auto* waitall = out.mpi.row("Waitall");
    std::printf("MPI_Wait: %.1f ms   MPI_Waitall: %.1f ms (cumulative over ranks)\n",
                wait != nullptr ? wait->time_ms : 0.0,
                waitall != nullptr ? waitall->time_ms : 0.0);
    if (out.offloads > 0)
      std::printf("offloaded syscalls: %llu, service-CPU queueing p50 %.1f / p95 %.1f / max %.1f us\n",
                  static_cast<unsigned long long>(out.offloads),
                  out.offload_queue.p50_us, out.offload_queue.p95_us,
                  out.offload_queue.max_us);
    std::printf("kernel time in ioctl+writev: %.1f%%\n\n",
                100.0 * (out.kernel.share_of("ioctl") + out.kernel.share_of("writev")));
  }

  std::printf("Expected shape (paper): plain McKernel collapses under offload\n"
              "contention; McKernel+HFI1 beats Linux.\n");
  return 0;
}
