file(REMOVE_RECURSE
  "libpd_dwarf.a"
)
