file(REMOVE_RECURSE
  "CMakeFiles/pd_common.dir/log.cpp.o"
  "CMakeFiles/pd_common.dir/log.cpp.o.d"
  "CMakeFiles/pd_common.dir/stats.cpp.o"
  "CMakeFiles/pd_common.dir/stats.cpp.o.d"
  "CMakeFiles/pd_common.dir/units.cpp.o"
  "CMakeFiles/pd_common.dir/units.cpp.o.d"
  "libpd_common.a"
  "libpd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
