// DWARF debug-info writer.
//
// `InfoBuilder` assembles a type graph (base types, enums, pointers, arrays,
// typedefs, structs, unions) and serializes it as a DWARF4-style
// `.debug_abbrev` + `.debug_info` pair. The simulated HFI1 kernel module is
// "shipped" with this debug info, and the dwarf-extract-struct tool (paper
// §3.2) consumes it without any knowledge of how it was produced.
//
// Forward references are legal: `forward_struct()` returns a TypeRef that a
// pointer may target before `define_struct()` fills it in, which is how
// self-referential driver structures (lists, rings) are expressed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.hpp"

namespace pd::dwarf {

/// Handle to a type node inside one InfoBuilder (index, 1-based; 0 invalid).
struct TypeRef {
  std::uint32_t id = 0;
  bool valid() const { return id != 0; }
};

/// A serialized compile unit.
struct DebugInfo {
  std::vector<std::uint8_t> abbrev;  // .debug_abbrev
  std::vector<std::uint8_t> info;    // .debug_info
  std::vector<std::uint8_t> str;     // .debug_str (empty unless strp used)
};

/// How strings are stored in .debug_info.
enum class StringForm {
  inline_string,  // DW_FORM_string: NUL-terminated in place
  strp,           // DW_FORM_strp: 4-byte offsets into .debug_str (deduplicated)
};

class InfoBuilder {
 public:
  struct Member {
    std::string name;
    TypeRef type;
    std::uint64_t offset = 0;  // DW_AT_data_member_location
    // Bitfield members (bit_size > 0): DW_AT_bit_offset counts from the
    // least-significant bit of the storage unit at `offset` (the
    // little-endian convention this library fixes).
    std::uint32_t bit_size = 0;
    std::uint32_t bit_offset = 0;
  };
  struct Enumerator {
    std::string name;
    std::int64_t value = 0;
  };

  TypeRef add_base_type(std::string name, std::uint64_t byte_size, std::uint8_t encoding);
  TypeRef add_pointer(TypeRef pointee);  // invalid pointee => `void *`
  TypeRef add_enum(std::string name, std::uint64_t byte_size, std::vector<Enumerator> values);
  TypeRef add_array(TypeRef element, std::uint64_t count);
  /// Multi-dimensional array: one DW_TAG_subrange_type child per dimension.
  TypeRef add_array_md(TypeRef element, std::vector<std::uint64_t> counts);
  TypeRef add_typedef(std::string name, TypeRef target);
  /// Type qualifiers (DW_TAG_const_type / DW_TAG_volatile_type).
  TypeRef add_const(TypeRef target);
  TypeRef add_volatile(TypeRef target);

  /// Declare a struct whose layout will be provided later (or never, for
  /// pointer-only opaque types).
  TypeRef forward_struct(std::string name);
  /// Fill in a forward-declared struct. Asserts it is still undefined.
  void define_struct(TypeRef ref, std::uint64_t byte_size, std::vector<Member> members);
  /// Declare-and-define in one step.
  TypeRef add_struct(std::string name, std::uint64_t byte_size, std::vector<Member> members);
  TypeRef add_union(std::string name, std::uint64_t byte_size, std::vector<Member> members);

  /// Serialize everything added so far into one compile unit.
  DebugInfo build(const std::string& producer, const std::string& cu_name,
                  StringForm strings = StringForm::inline_string) const;

 private:
  enum class Kind {
    base,
    pointer,
    enumeration,
    array,
    type_def,
    structure,
    union_type,
    const_qual,
    volatile_qual,
  };

  struct Node {
    Kind kind;
    std::string name;
    std::uint64_t byte_size = 0;
    std::uint8_t encoding = 0;
    std::vector<std::uint64_t> counts;  // array dimensions
    TypeRef referent;            // pointer / array / typedef / qualifier target
    bool defined = true;         // false for forward-declared structs
    std::vector<Member> members;
    std::vector<Enumerator> enumerators;
  };

  TypeRef push(Node node);
  const Node& node(TypeRef ref) const { return nodes_[ref.id - 1]; }
  Node& node(TypeRef ref) { return nodes_[ref.id - 1]; }

  std::vector<Node> nodes_;
};

}  // namespace pd::dwarf
