#include "src/dwarf/module_binary.hpp"

#include <cstring>
#include <fstream>

#include "src/dwarf/leb128.hpp"

namespace pd::dwarf {

namespace {

constexpr char kMagic[8] = {'P', 'D', 'M', 'O', 'D', '0', '0', '1'};

void write_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

void ModuleBinary::set_section(const std::string& name, std::vector<std::uint8_t> bytes) {
  for (auto& s : sections_) {
    if (s.name == name) {
      s.bytes = std::move(bytes);
      return;
    }
  }
  sections_.push_back(Section{name, std::move(bytes)});
}

const std::vector<std::uint8_t>* ModuleBinary::section(const std::string& name) const {
  for (const auto& s : sections_)
    if (s.name == name) return &s.bytes;
  return nullptr;
}

std::vector<std::string> ModuleBinary::section_names() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& s : sections_) names.push_back(s.name);
  return names;
}

std::vector<std::uint8_t> ModuleBinary::serialize() const {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  write_u64(out, sections_.size());
  for (const auto& s : sections_) {
    write_u64(out, s.name.size());
    out.insert(out.end(), s.name.begin(), s.name.end());
    write_u64(out, s.bytes.size());
    out.insert(out.end(), s.bytes.begin(), s.bytes.end());
  }
  return out;
}

Result<ModuleBinary> ModuleBinary::deserialize(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < sizeof kMagic || std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    return Errno::einval;
  ByteCursor cur(bytes.data(), bytes.size());
  cur.seek(sizeof kMagic);
  auto count = cur.read_u64();
  if (!count) return count.error();

  ModuleBinary mod;
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto name_len = cur.read_u64();
    if (!name_len || *name_len > cur.remaining()) return Errno::einval;
    std::string name;
    for (std::uint64_t c = 0; c < *name_len; ++c) {
      auto ch = cur.read_u8();
      if (!ch) return ch.error();
      name.push_back(static_cast<char>(*ch));
    }
    auto size = cur.read_u64();
    if (!size || *size > cur.remaining()) return Errno::einval;
    std::vector<std::uint8_t> data;
    data.reserve(*size);
    for (std::uint64_t b = 0; b < *size; ++b) {
      auto byte = cur.read_u8();
      if (!byte) return byte.error();
      data.push_back(*byte);
    }
    mod.set_section(name, std::move(data));
  }
  return mod;
}

Status ModuleBinary::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Errno::eio;
  const auto bytes = serialize();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out ? Status::success() : Status(Errno::eio);
}

Result<ModuleBinary> ModuleBinary::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Errno::enoent;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return deserialize(bytes);
}

void ModuleBinary::set_version(const std::string& version) {
  set_section(".modinfo", std::vector<std::uint8_t>(version.begin(), version.end()));
}

std::optional<std::string> ModuleBinary::version() const {
  const auto* bytes = section(".modinfo");
  if (bytes == nullptr) return std::nullopt;
  return std::string(bytes->begin(), bytes->end());
}

}  // namespace pd::dwarf
