// IKC transport: the cross-kernel system-call delegation channel as an
// explicit subsystem (paper §2.1; MultiK's "the inter-kernel channel is an
// orchestrated component, not an ad-hoc call").
//
// Two transports live behind `Ihk::offload`:
//
//   direct — the legacy path: every offload is its own proxy wakeup on the
//            shared Linux service-CPU pool, with load-dependent wakeup,
//            per-waiter scheduler thrash and the proxy-run service
//            multiplier. This is the paper's measured McKernel behaviour
//            and stays the calibrated default.
//   ring   — per-LWK-CPU request rings in simulated shared memory
//            (RingBuffer slots guarded by the §3.3 cross-kernel spin-lock),
//            drained by dedicated Linux-side service loops pinned to the
//            `linux_service_cpus`. Loops dequeue in batches, amortizing the
//            schedule-in cost, and wake through a doorbell/poll hybrid.
//            Each channel carries two priority classes so fast-path control
//            calls (TID-registration ioctls) are not stuck behind bulk I/O.
//
// Robustness (ring mode): every request carries a ring-residency deadline;
// on expiry the submitter retries on a ring owned by a different service
// loop (bounded backoff), and after the retry budget falls back to the
// direct path. Consecutive timeouts mark a service loop suspect — further
// submissions avoid it except for periodic health probes, whose success
// clears the mark. The ladder is: retry elsewhere → avoid the stalled loop
// → degrade to direct; a fully stalled service side therefore slows
// offloads down instead of hanging them.
//
// Observability: `ikc.ring.{enqueue,batch_drain,doorbell,poll_hit,timeout,
// retry,degraded,...}` counters plus per-channel queue-depth histograms are
// threaded through the Linux kernel's SyscallProfiler, and every request's
// queueing delay lands in the shared `Samples` the owning Ihk summarizes.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/ring_buffer.hpp"
#include "src/common/stats.hpp"
#include "src/common/status.hpp"
#include "src/os/config.hpp"
#include "src/os/profiler.hpp"
#include "src/os/spinlock.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"

namespace pd::ikc {

/// The Linux-side work of one offloaded syscall (runs in proxy context).
using Service = std::function<sim::Task<Result<long>>()>;

/// Per-channel priority classes: `control` for fast-path-critical admin
/// calls (TID registration, open/close), `bulk` for data-path I/O.
enum class Priority { control = 0, bulk = 1 };

/// Percentile summary of offload queueing delays (µs).
struct QueueingSummary {
  std::size_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double max_us = 0;
};

QueueingSummary summarize_queueing(const Samples& samples);

class IkcTransport {
 public:
  /// Queue-depth histogram buckets: depth ≤ 1, 2, 4, 8, 16, 32, > 32.
  static constexpr int kDepthBuckets = 7;
  using DepthHistogram = std::array<std::uint64_t, kDepthBuckets>;

  /// `service_cpus`: the shared Linux service-CPU pool (CPU time for both
  /// transports and for IRQ bottom halves). `profiler`: where the ikc.*
  /// counters land (the Linux kernel's). `queueing_us`: per-request
  /// queueing samples, owned by the Ihk that owns this transport.
  /// Ring-mode service loops are spawned here and live until the engine
  /// destroys their frames.
  IkcTransport(sim::Engine& engine, const os::Config& cfg, sim::Resource& service_cpus,
               os::SyscallProfiler& profiler, Samples& queueing_us, std::string lock_abi);
  IkcTransport(const IkcTransport&) = delete;
  IkcTransport& operator=(const IkcTransport&) = delete;

  /// Delegate one syscall. Ring mode enqueues on the hinted channel and
  /// follows the degradation ladder; direct mode is the legacy path.
  sim::Task<Result<long>> offload(Service service, Priority prio, int channel_hint);

  int num_channels() const { return channels_n_; }
  int num_loops() const { return loops_n_; }
  int loop_of(int channel) const { return channel % loops_n_; }

  /// --- fault injection / introspection (tests, failure injection) --------
  /// Halt or resume one Linux-side service loop ("service thread wedged").
  /// Stalling is a *fault*: the transport must detect it behaviourally via
  /// deadlines, never by reading this flag on the submit path.
  void inject_stall(int loop, bool stalled);
  bool stall_injected(int loop) const { return loops_.at(loop)->stall_injected; }
  /// Has this loop accumulated enough consecutive timeouts to be avoided?
  bool loop_suspect(int loop) const;
  std::uint64_t loop_served(int loop) const { return loops_.at(loop)->served; }
  std::size_t channel_depth(int channel) const;
  const DepthHistogram& depth_histogram(int channel) const {
    return depth_hist_.at(channel);
  }

 private:
  struct Request {
    explicit Request(sim::Engine& engine) : done(engine) {}
    enum class State { queued, claimed, done, timed_out };
    Service service;
    State state = State::queued;
    Result<long> result = Errno::eagain;
    Time enqueued_at = 0;
    sim::Latch done;
  };
  using RequestPtr = std::shared_ptr<Request>;

  struct Channel {
    Channel(sim::Engine& engine, std::string abi, Dur lock_cost, std::size_t depth)
        : lock(engine, std::move(abi), lock_cost), rings{RingBuffer<RequestPtr>(depth),
                                                         RingBuffer<RequestPtr>(depth)} {}
    os::SharedSpinlock lock;     // the cross-kernel ring lock (§3.3)
    RingBuffer<RequestPtr> rings[2];  // [control, bulk]
  };

  struct Loop {
    explicit Loop(sim::Engine& engine) : doorbell(engine), unstall(engine) {}
    sim::Channel<int> doorbell;
    sim::Channel<int> unstall;
    bool sleeping = false;        // blocked on the doorbell
    bool stall_injected = false;
    int consecutive_timeouts = 0; // submit-side stall detector
    std::uint64_t served = 0;
  };

  sim::Task<Result<long>> direct_offload(Service service);
  sim::Task<Result<long>> ring_offload(Service service, Priority prio, int channel_hint);
  sim::Task<> service_loop(int loop);
  /// Pop up to `ikc_batch` claimable requests from this loop's channels,
  /// control class first; pays the ring-lock cost per non-empty channel.
  sim::Task<> collect_batch(int loop, std::vector<RequestPtr>& out);

  RingBuffer<RequestPtr>& ring(int channel, Priority prio) {
    return channels_[static_cast<std::size_t>(channel)]->rings[static_cast<int>(prio)];
  }
  bool has_work(int loop) const;
  /// Channel to actually submit on: the hint unless its loop is suspect, in
  /// which case rotate to a healthy loop's channel (or probe the suspect
  /// one every `ikc_probe_interval`-th time). -1 → every loop suspect.
  int pick_channel(int channel);
  void note_depth(int channel);

  sim::Engine& engine_;
  const os::Config& cfg_;
  sim::Resource& service_cpus_;
  os::SyscallProfiler& prof_;
  Samples& queueing_us_;
  int channels_n_;
  int loops_n_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<DepthHistogram> depth_hist_;
  /// Cached per-channel counter names so enqueue-path bumps never build
  /// strings ("ikc.ring.depth.ch<k>.le<n>").
  std::vector<std::unique_ptr<std::array<std::string, kDepthBuckets>>> depth_names_;
  std::uint64_t probe_tick_ = 0;
};

}  // namespace pd::ikc
