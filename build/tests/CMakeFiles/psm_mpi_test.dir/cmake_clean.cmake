file(REMOVE_RECURSE
  "CMakeFiles/psm_mpi_test.dir/psm_mpi_test.cpp.o"
  "CMakeFiles/psm_mpi_test.dir/psm_mpi_test.cpp.o.d"
  "psm_mpi_test"
  "psm_mpi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psm_mpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
