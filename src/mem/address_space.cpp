#include "src/mem/address_space.hpp"

#include <algorithm>
#include <cassert>

namespace pd::mem {

AddressSpace::AddressSpace(PhysMap& phys, BackingPolicy policy, MemKind preferred_kind,
                           VirtAddr mmap_base, std::uint64_t rng_seed)
    : phys_(phys),
      policy_(policy),
      preferred_kind_(preferred_kind),
      mmap_cursor_(mmap_base),
      rng_(rng_seed) {}

AddressSpace::~AddressSpace() {
  // Return all anonymous backings to the physical allocator.
  for (auto& [start, vma] : vmas_)
    if (!vma.device) release_backing(vma);
}

Result<VirtAddr> AddressSpace::reserve_va(std::uint64_t len, std::uint64_t align) {
  const VirtAddr addr = page_ceil(mmap_cursor_, align);
  mmap_cursor_ = addr + page_ceil(len, kPage4K);
  return addr;
}

Result<VirtAddr> AddressSpace::mmap_anonymous(std::uint64_t len, std::uint32_t prot) {
  if (len == 0) return Errno::einval;
  len = page_ceil(len, kPage4K);

  std::vector<Backing> backings;
  auto rollback = [&] {
    for (const auto& b : backings) phys_.free(b.pa, b.len);
  };

  if (policy_ == BackingPolicy::linux_4k) {
    // Page-by-page backing. To model a fragmented host, allocate small
    // random-order blocks so virtually adjacent pages land on physically
    // scattered frames (contiguity across page boundaries is rare).
    auto va = reserve_va(len, kPage4K);
    for (std::uint64_t off = 0; off < len; off += kPage4K) {
      auto pa = phys_.alloc(kPage4K, preferred_kind_);
      if (!pa.ok()) {
        rollback();
        return pa.error();
      }
      backings.push_back(Backing{*pa, kPage4K, kPage4K});
    }
    // Shuffle frame order before mapping: each allocation above may have
    // been contiguous with its neighbour; a long-running kernel's page
    // pool is not.
    for (std::size_t i = backings.size(); i > 1; --i)
      std::swap(backings[i - 1], backings[rng_.next_below(i)]);
    VirtAddr cur = *va;
    for (auto& b : backings) {
      Status s = pt_.map(cur, b.pa, kPage4K, prot);
      assert(s.ok());
      (void)s;
      cur += kPage4K;
    }
    Vma vma{*va, *va + len, prot, /*pinned=*/false, /*device=*/false};
    vmas_.emplace(*va, vma);
    backings_.emplace(*va, std::move(backings));
    return *va;
  }

  // LWK policy: back with the largest contiguous blocks available, 2 MiB
  // leaves when alignment allows, and pin everything up front.
  const std::uint64_t align = len >= kPage2M ? kPage2M : kPage4K;
  auto va = reserve_va(len, align);
  VirtAddr cur = *va;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    // Try the largest power-of-two chunk (<= remaining) first, shrinking on
    // allocation failure; chunks >= 2 MiB map with large-page leaves.
    std::uint64_t chunk = std::uint64_t(1) << BuddyAllocator::order_for(remaining);
    if (chunk > remaining) chunk >>= 1;
    chunk = std::max(chunk, kPage4K);
    Result<PhysAddr> pa = Errno::enomem;
    while (true) {
      pa = phys_.alloc(chunk, preferred_kind_);
      if (pa.ok() || chunk == kPage4K) break;
      chunk >>= 1;
    }
    if (!pa.ok()) {
      rollback();
      pt_.unmap_range(*va, cur - *va);
      return pa.error();
    }
    const bool large_ok = chunk >= kPage2M && page_aligned(cur, kPage2M) &&
                          page_aligned(*pa, kPage2M);
    const std::uint64_t leaf = large_ok ? kPage2M : kPage4K;
    Status s = pt_.map_range(cur, *pa, chunk, leaf, prot);
    assert(s.ok());
    (void)s;
    backings.push_back(Backing{*pa, chunk, leaf});
    // Pin every 4 KiB frame in the chunk.
    for (std::uint64_t off = 0; off < chunk; off += kPage4K) ++pin_counts_[*pa + off];
    cur += chunk;
    remaining -= chunk;
  }
  Vma vma{*va, *va + len, prot, /*pinned=*/true, /*device=*/false};
  vmas_.emplace(*va, vma);
  backings_.emplace(*va, std::move(backings));
  return *va;
}

Result<VirtAddr> AddressSpace::mmap_device(PhysAddr pa, std::uint64_t len, std::uint32_t prot) {
  if (len == 0 || !page_aligned(pa, kPage4K)) return Errno::einval;
  len = page_ceil(len, kPage4K);
  auto va = reserve_va(len, kPage4K);
  Status s = pt_.map_range(*va, pa, len, kPage4K, prot);
  if (!s.ok()) return s.error();
  Vma vma{*va, *va + len, prot, /*pinned=*/true, /*device=*/true};
  vmas_.emplace(*va, vma);
  return *va;
}

void AddressSpace::release_backing(const Vma& vma) {
  auto it = backings_.find(vma.start);
  if (it == backings_.end()) return;
  for (const auto& b : it->second) {
    if (vma.pinned)
      for (std::uint64_t off = 0; off < b.len; off += kPage4K) {
        auto pin = pin_counts_.find(b.pa + off);
        if (pin != pin_counts_.end() && --pin->second == 0) pin_counts_.erase(pin);
      }
    phys_.free(b.pa, b.len);
  }
  backings_.erase(it);
}

Status AddressSpace::munmap(VirtAddr addr, std::uint64_t len) {
  auto it = vmas_.find(addr);
  if (it == vmas_.end() || it->second.end - it->second.start != page_ceil(len, kPage4K))
    return Errno::einval;
  const Vma vma = it->second;
  pt_.unmap_range(vma.start, vma.end - vma.start);
  if (!vma.device) release_backing(vma);
  vmas_.erase(it);
  // Caches validate against the generation, then against the interval log:
  // only entries whose range overlaps a logged unmap are actually stale.
  ++map_generation_;
  unmap_log_.push_back(UnmapInterval{vma.start, vma.end, map_generation_});
  while (unmap_log_.size() > unmap_log_capacity_) {
    unmap_log_floor_ = unmap_log_.front().generation;
    unmap_log_.erase(unmap_log_.begin());
  }
  return Status::success();
}

void AddressSpace::set_unmap_log_capacity(std::size_t n) {
  unmap_log_capacity_ = n;
  while (unmap_log_.size() > unmap_log_capacity_) {
    unmap_log_floor_ = unmap_log_.front().generation;
    unmap_log_.erase(unmap_log_.begin());
  }
}

RangeVerdict AddressSpace::range_verdict_since(VirtAddr va, std::uint64_t len,
                                               std::uint64_t generation) const {
  if (generation >= map_generation_) return RangeVerdict::intact;
  if (generation < unmap_log_floor_) return RangeVerdict::unknown;
  // Unmaps are VMA-granular and page aligned; widen the query to page
  // bounds so a partially covered edge page is never missed.
  const VirtAddr lo = page_floor(va, kPage4K);
  const VirtAddr hi = page_ceil(va + len, kPage4K);
  for (const UnmapInterval& u : unmap_log_) {
    if (u.generation <= generation) continue;
    if (u.start < hi && lo < u.end) return RangeVerdict::overlaps_unmap;
  }
  return RangeVerdict::intact;
}

Result<PinnedPages> AddressSpace::get_user_pages(VirtAddr va, std::uint64_t len) {
  if (len == 0) return Errno::einval;
  const VirtAddr start = page_floor(va, kPage4K);
  const VirtAddr end = page_ceil(va + len, kPage4K);
  PinnedPages pages;
  pages.frames.reserve((end - start) / kPage4K);
  for (VirtAddr cur = start; cur < end; cur += kPage4K) {
    auto t = pt_.translate(cur);
    if (!t) {
      put_user_pages(pages);  // unpin what we already took
      return Errno::efault;
    }
    const PhysAddr frame = page_floor(t->pa, kPage4K);
    ++pin_counts_[frame];
    pages.frames.push_back(frame);
  }
  return pages;
}

void AddressSpace::put_user_pages(const PinnedPages& pages) {
  for (PhysAddr frame : pages.frames) {
    auto it = pin_counts_.find(frame);
    assert(it != pin_counts_.end());
    if (--it->second == 0) pin_counts_.erase(it);
  }
}

Result<std::vector<PhysExtent>> AddressSpace::physical_extents(VirtAddr va, std::uint64_t len,
                                                               std::uint64_t max_extent) const {
  std::vector<PhysExtent> extents;
  Status s = physical_extents(va, len, max_extent, extents);
  if (!s.ok()) return s.error();
  return extents;
}

Status AddressSpace::physical_extents(VirtAddr va, std::uint64_t len, std::uint64_t max_extent,
                                      std::vector<PhysExtent>& extents) const {
  extents.clear();
  if (len == 0) return Errno::einval;
  VirtAddr cur = va;
  const VirtAddr end = va + len;
  while (cur < end) {
    auto t = pt_.translate(cur);
    if (!t) return Errno::efault;
    // Bytes until the end of this leaf page.
    const std::uint64_t in_page = t->page - (cur & (t->page - 1));
    std::uint64_t run = std::min<std::uint64_t>(in_page, end - cur);
    // Merge with the previous extent when physically adjacent.
    if (!extents.empty() && extents.back().pa + extents.back().len == t->pa &&
        (max_extent == 0 || extents.back().len < max_extent)) {
      const std::uint64_t room =
          max_extent == 0 ? run : std::min(run, max_extent - extents.back().len);
      extents.back().len += room;
      if (room < run) extents.push_back(PhysExtent{t->pa + room, run - room});
    } else {
      extents.push_back(PhysExtent{t->pa, run});
    }
    // Split oversized extents down to max_extent.
    if (max_extent != 0 && extents.back().len > max_extent) {
      PhysExtent big = extents.back();
      extents.pop_back();
      std::uint64_t off = 0;
      while (off < big.len) {
        const std::uint64_t piece = std::min(max_extent, big.len - off);
        extents.push_back(PhysExtent{big.pa + off, piece});
        off += piece;
      }
    }
    cur += run;
  }
  return Status::success();
}

const Vma* AddressSpace::find_vma(VirtAddr va) const {
  auto it = vmas_.upper_bound(va);
  if (it == vmas_.begin()) return nullptr;
  --it;
  return va < it->second.end ? &it->second : nullptr;
}

std::uint64_t AddressSpace::pinned_frame_count() const {
  return static_cast<std::uint64_t>(pin_counts_.size());
}

bool AddressSpace::is_pinned(PhysAddr frame) const {
  return pin_counts_.count(page_floor(frame, kPage4K)) > 0;
}

double AddressSpace::large_page_fraction() const {
  std::uint64_t large = 0, total = 0;
  for (const auto& [start, list] : backings_) {
    for (const auto& b : list) {
      total += b.len;
      if (b.page == kPage2M) large += b.len;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(large) / static_cast<double>(total);
}

}  // namespace pd::mem
