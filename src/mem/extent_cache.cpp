#include "src/mem/extent_cache.hpp"

#include <algorithm>

namespace pd::mem {

ExtentCache::Entry* ExtentCache::select_victim() {
  if (policy_ == EvictionPolicy::lru)
    return &*std::min_element(entries_.begin(), entries_.end(),
                              [](const Entry& a, const Entry& b) {
                                return a.last_used < b.last_used;
                              });
  // Size-aware retention value: an entry is worth keeping in proportion to
  // how often it hits and how many resident bytes each hit saves walking,
  // decayed by how long it has sat unused. Large persistent windows keep a
  // high score through bursts of small one-shot buffers; the burst evicts
  // its own kind instead.
  auto score = [this](const Entry& e) {
    const double value = static_cast<double>(1 + e.hit_count) * static_cast<double>(e.len);
    const double age = static_cast<double>(tick_ - e.last_used) + 1.0;
    return value / age;
  };
  return &*std::min_element(entries_.begin(), entries_.end(),
                            [&score](const Entry& a, const Entry& b) {
                              return score(a) < score(b);
                            });
}

Result<std::span<const PhysExtent>> ExtentCache::lookup(const AddressSpace& as, VirtAddr va,
                                                        std::uint64_t len,
                                                        std::uint64_t max_extent,
                                                        Outcome* outcome) {
  ++tick_;

  if (capacity_ == 0) {
    // Pass-through: walk into the scratch entry's storage, retain nothing.
    Status walked = as.physical_extents(va, len, max_extent, scratch_.extents);
    if (!walked.ok()) return walked.error();
    ++stats_.misses;
    if (outcome != nullptr) *outcome = Outcome::miss;
    return std::span<const PhysExtent>(scratch_.extents);
  }

  Entry* entry = nullptr;
  for (Entry& e : entries_)
    if (e.va == va && e.len == len && e.max_extent == max_extent) {
      entry = &e;
      break;
    }

  Outcome miss_kind = Outcome::miss;
  if (entry != nullptr) {
    bool fresh = entry->generation == as.map_generation();
    if (!fresh) {
      // Range-precise check: only an unmap overlapping this entry's pages
      // proves it stale. When the log can clear it, refresh the generation
      // so the next lookup takes the cheap equality path again.
      switch (as.range_verdict_since(entry->va, entry->len, entry->generation)) {
        case RangeVerdict::intact:
          entry->generation = as.map_generation();
          fresh = true;
          break;
        case RangeVerdict::overlaps_unmap:
          miss_kind = Outcome::range_invalidated;
          break;
        case RangeVerdict::unknown:
          miss_kind = Outcome::generation_overflow;
          break;
      }
    }
    if (fresh) {
      ++stats_.hits;
      ++entry->hit_count;
      entry->last_used = tick_;
      if (outcome != nullptr) *outcome = Outcome::hit;
      return std::span<const PhysExtent>(entry->extents);
    }
  }

  if (entry == nullptr) {
    if (entries_.size() < capacity_) {
      entry = &entries_.emplace_back();
    } else {
      // Evict the lowest-retention-value slot; its vector capacity is reused.
      entry = select_victim();
      ++stats_.evictions;
      miss_kind = Outcome::evicted_small;
    }
    entry->va = va;
    entry->len = len;
    entry->max_extent = max_extent;
    entry->hit_count = 0;
  }

  Status walked = as.physical_extents(va, len, max_extent, entry->extents);
  if (!walked.ok()) {
    // Keep the slot but poison the key so a later success does not alias.
    entry->va = 0;
    entry->len = 0;
    entry->hit_count = 0;
    return walked.error();
  }
  entry->generation = as.map_generation();
  entry->last_used = tick_;
  switch (miss_kind) {
    case Outcome::miss:
    case Outcome::evicted_small:
      ++stats_.misses;
      break;
    case Outcome::range_invalidated:
      ++stats_.range_invalidations;
      break;
    case Outcome::generation_overflow:
      ++stats_.generation_overflows;
      break;
    case Outcome::hit:
      break;  // unreachable
  }
  if (outcome != nullptr) *outcome = miss_kind;
  return std::span<const PhysExtent>(entry->extents);
}

}  // namespace pd::mem
