# Empty dependencies file for pd_hfi.
# This may be replaced when dependencies are built.
