// A guided tour of the PicoDriver mechanisms from paper §3, one at a time:
//
//   1. why the original McKernel VA layout cannot host a PicoDriver
//      (§3.1 unification requirements, checked and reported);
//   2. DWARF structure extraction from the shipped module binary (§3.2),
//      including the generated Listing-1 header;
//   3. the split data path in action: a fast-path writev from the LWK,
//      the Linux-side completion IRQ invoking a callback that lives in
//      McKernel TEXT, and the cross-kernel kfree flowing through the
//      remote-free queue (§3.3);
//   4. the §3.4 payoff: descriptor sizes with and without the fast path.
#include <cstdio>

#include "src/common/units.hpp"
#include "src/hfi/driver.hpp"
#include "src/pico/hfi_picodriver.hpp"

using namespace pd;

namespace {

sim::Task<> demo_writev(os::Process& proc, hw::HfiDevice& peer_dev, bool* completed) {
  auto fd = co_await proc.open(hfi::kDeviceName);
  if (!fd.ok()) co_return;
  auto buf = co_await proc.mmap_anon(256_KiB);
  if (!buf.ok()) co_return;

  hfi::SdmaReqHeader hdr;
  hdr.wire.src_node = 0;
  hdr.wire.dst_node = 1;
  hdr.wire.dst_ctxt = 0;
  hdr.wire.kind = hw::WireKind::expected;
  hdr.wire.seq = 1;
  hdr.on_complete = [completed] { *completed = true; };
  peer_dev.open_context(0);

  std::vector<os::IoVec> iov{
      os::IoVec{reinterpret_cast<mem::VirtAddr>(&hdr), sizeof hdr},
      os::IoVec{*buf, 256_KiB}};
  auto r = co_await proc.writev(*fd, std::move(iov));
  std::printf("   writev(256 KiB) returned %ld\n", r.ok() ? *r : -1L);
}

}  // namespace

int main() {
  sim::Engine engine;
  os::Config cfg;
  hw::Fabric fabric(engine, 2);
  mem::PhysMap phys = mem::PhysMap::knl(512_MiB, 1ull << 30, 2);
  hw::HfiDevice device(engine, fabric, 0), peer(engine, fabric, 1);
  os::LinuxKernel linux_kernel(engine, cfg);
  hfi::HfiDriver driver(linux_kernel, device, "10.9-5");
  os::Ihk ihk(engine, cfg, linux_kernel);

  std::printf("== 1. Address-space unification (paper 3.1) ==\n");
  {
    const auto bad = mem::check_unification(mem::linux_layout(),
                                            mem::mckernel_original_layout());
    std::printf(" original McKernel layout: unified=%s\n", bad.unified() ? "yes" : "no");
    for (const auto& v : bad.violations) std::printf("   violation: %s\n", v.c_str());
    const auto good =
        mem::check_unification(mem::linux_layout(), mem::mckernel_unified_layout());
    std::printf(" PicoDriver McKernel layout: unified=%s (image moved to top of the\n"
                "   Linux module space, direct maps aliased)\n\n",
                good.unified() ? "yes" : "no");
  }

  os::McKernel mck(engine, cfg, ihk, /*unified_layout=*/true);

  std::printf("== 2. DWARF binding against the shipped module (paper 3.2) ==\n");
  auto pico = pico::HfiPicoDriver::create(mck, driver);
  if (!pico.ok()) {
    std::printf("bind failed\n");
    return 1;
  }
  std::printf(" bound driver: %s\n", (*pico)->binding().driver_version().c_str());
  auto header = (*pico)->binding().generated_header("sdma_state");
  std::printf(" generated header for sdma_state:\n%s\n", header->c_str());

  std::printf("== 3. Split data path + cross-kernel callback/kfree (paper 3.3) ==\n");
  os::Process proc(mck, phys, /*node=*/0, /*ctxt=*/0, /*seed=*/7);
  bool completed = false;
  sim::spawn(engine, demo_writev(proc, peer, &completed));
  engine.run();
  std::printf("   completion callback (McKernel TEXT, run by Linux IRQ): %s\n",
              completed ? "fired" : "MISSING");
  std::printf("   Linux callback faults: %llu (0 = LWK text visible via vmap_area)\n",
              static_cast<unsigned long long>(linux_kernel.callback_faults()));
  std::printf("   LWK remote-free queue: %llu block(s) parked by the Linux CPU\n",
              static_cast<unsigned long long>(mck.kheap().stats().remote_frees));
  const std::size_t drained = mck.drain_remote_frees();
  std::printf("   drained on the LWK scheduler tick: %zu block(s)\n\n", drained);

  std::printf("== 4. The 3.4 payoff ==\n");
  std::printf("   fast-path writevs: %llu, descriptors issued: %llu (mean %.0f bytes;\n"
              "   the unmodified Linux driver would have used 4096)\n",
              static_cast<unsigned long long>((*pico)->fast_writevs()),
              static_cast<unsigned long long>(device.total_descriptors()),
              device.total_descriptors()
                  ? static_cast<double>(device.total_descriptor_bytes()) /
                        device.total_descriptors()
                  : 0.0);
  return 0;
}
