// In-kernel syscall profiler (the paper's "in-house kernel profiler",
// §4.3) and generic named-cost accounting used for Figures 8 and 9.
// Also carries named event counters (extent-cache hits/misses, slab
// reuse, ring-full fallbacks) so fast-path internals are observable from
// the same place as the syscall profile.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/time.hpp"

namespace pd::os {

class SyscallProfiler {
 public:
  void record(const std::string& name, Dur kernel_time) {
    auto& entry = calls_[name];
    entry.add(to_us(kernel_time));
    total_ += kernel_time;
  }

  Dur total_kernel_time() const { return total_; }
  std::size_t distinct_calls() const { return calls_.size(); }

  struct Row {
    std::string name;
    double total_us = 0;
    std::size_t count = 0;
    double share = 0;  // of total kernel time
  };

  /// Rows sorted by descending total time; `top` = 0 returns all.
  std::vector<Row> rows(std::size_t top = 0) const;

  double share_of(const std::string& name) const;
  double total_us_of(const std::string& name) const;
  std::uint64_t count_of(const std::string& name) const;

  /// --- named event counters ----------------------------------------------
  /// Untimed occurrence counts (cache hits, slab reuses, fallbacks, ...).
  /// The fast path exports one counter per extent-cache lookup outcome
  /// ("pico.extent_cache.hit/miss/range_invalidated/generation_overflow/
  /// evicted_small"), so sum_counters("pico.extent_cache.") — minus the
  /// eviction events, which ride along with their miss — totals the lookups.
  void bump(const std::string& name, std::uint64_t n = 1) { counters_[name] += n; }
  std::uint64_t counter(const std::string& name) const;
  /// Sum of every counter whose name starts with `prefix`.
  std::uint64_t sum_counters(const std::string& prefix) const;
  const std::map<std::string, std::uint64_t>& counters() const { return counters_; }

  void merge(const SyscallProfiler& other);
  void clear() {
    calls_.clear();
    counters_.clear();
    total_ = 0;
  }

 private:
  std::map<std::string, RunningStats> calls_;
  std::map<std::string, std::uint64_t> counters_;
  Dur total_ = 0;
};

}  // namespace pd::os
