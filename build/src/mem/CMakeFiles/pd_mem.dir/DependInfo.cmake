
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cpp" "src/mem/CMakeFiles/pd_mem.dir/address_space.cpp.o" "gcc" "src/mem/CMakeFiles/pd_mem.dir/address_space.cpp.o.d"
  "/root/repo/src/mem/kernel_space.cpp" "src/mem/CMakeFiles/pd_mem.dir/kernel_space.cpp.o" "gcc" "src/mem/CMakeFiles/pd_mem.dir/kernel_space.cpp.o.d"
  "/root/repo/src/mem/kheap.cpp" "src/mem/CMakeFiles/pd_mem.dir/kheap.cpp.o" "gcc" "src/mem/CMakeFiles/pd_mem.dir/kheap.cpp.o.d"
  "/root/repo/src/mem/page_table.cpp" "src/mem/CMakeFiles/pd_mem.dir/page_table.cpp.o" "gcc" "src/mem/CMakeFiles/pd_mem.dir/page_table.cpp.o.d"
  "/root/repo/src/mem/phys.cpp" "src/mem/CMakeFiles/pd_mem.dir/phys.cpp.o" "gcc" "src/mem/CMakeFiles/pd_mem.dir/phys.cpp.o.d"
  "/root/repo/src/mem/va_layout.cpp" "src/mem/CMakeFiles/pd_mem.dir/va_layout.cpp.o" "gcc" "src/mem/CMakeFiles/pd_mem.dir/va_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
