// Minimal leveled logger.
//
// Simulation components log through a process-global sink; tests lower the
// level to `error` so ctest output stays readable. Formatting is plain
// iostream-into-ostringstream — log calls are off the measured paths (the
// simulator measures *simulated* time, not wall time), so convenience wins.
#pragma once

#include <sstream>
#include <string>

namespace pd {

enum class LogLevel : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

namespace log_detail {
LogLevel& global_level();
void emit(LogLevel level, const std::string& msg);
}  // namespace log_detail

inline void set_log_level(LogLevel level) { log_detail::global_level() = level; }
inline LogLevel log_level() { return log_detail::global_level(); }

/// Stream-style log statement: `PD_LOG(info) << "booted " << n << " cpus";`
/// The stream body is only evaluated when the level is enabled.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_detail::emit(level_, out_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace pd

#define PD_LOG(severity)                                   \
  if (::pd::LogLevel::severity < ::pd::log_detail::global_level()) {} else \
    ::pd::LogLine(::pd::LogLevel::severity)
