# Empty compiler generated dependencies file for sweep_cluster.
# This may be replaced when dependencies are built.
