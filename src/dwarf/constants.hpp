// DWARF4 tag / attribute / form constants (the subset this library emits
// and consumes). Values are the standard ones from the DWARF4 specification
// so the streams are recognizable with standard tooling conventions.
#pragma once

#include <cstdint>

namespace pd::dwarf {

// Tags (DWARF4 §7.5.4, Figure 18).
enum : std::uint64_t {
  DW_TAG_array_type = 0x01,
  DW_TAG_enumeration_type = 0x04,
  DW_TAG_member = 0x0d,
  DW_TAG_pointer_type = 0x0f,
  DW_TAG_compile_unit = 0x11,
  DW_TAG_structure_type = 0x13,
  DW_TAG_typedef = 0x16,
  DW_TAG_union_type = 0x17,
  DW_TAG_subrange_type = 0x21,
  DW_TAG_base_type = 0x24,
  DW_TAG_const_type = 0x26,
  DW_TAG_enumerator = 0x28,
  DW_TAG_variable = 0x34,
  DW_TAG_volatile_type = 0x35,
};

/// Human-readable tag names (dwarfdump-style output).
constexpr const char* tag_name(std::uint64_t tag) {
  switch (tag) {
    case DW_TAG_array_type: return "DW_TAG_array_type";
    case DW_TAG_enumeration_type: return "DW_TAG_enumeration_type";
    case DW_TAG_member: return "DW_TAG_member";
    case DW_TAG_pointer_type: return "DW_TAG_pointer_type";
    case DW_TAG_compile_unit: return "DW_TAG_compile_unit";
    case DW_TAG_structure_type: return "DW_TAG_structure_type";
    case DW_TAG_typedef: return "DW_TAG_typedef";
    case DW_TAG_union_type: return "DW_TAG_union_type";
    case DW_TAG_subrange_type: return "DW_TAG_subrange_type";
    case DW_TAG_base_type: return "DW_TAG_base_type";
    case DW_TAG_const_type: return "DW_TAG_const_type";
    case DW_TAG_enumerator: return "DW_TAG_enumerator";
    case DW_TAG_variable: return "DW_TAG_variable";
    case DW_TAG_volatile_type: return "DW_TAG_volatile_type";
  }
  return "DW_TAG_<unknown>";
}

// Attributes (DWARF4 §7.5.4, Figure 20).
enum : std::uint64_t {
  DW_AT_name = 0x03,
  DW_AT_byte_size = 0x0b,
  DW_AT_bit_offset = 0x0c,
  DW_AT_bit_size = 0x0d,
  DW_AT_const_value = 0x1c,
  DW_AT_producer = 0x25,
  DW_AT_count = 0x37,
  DW_AT_data_member_location = 0x38,
  DW_AT_declaration = 0x3c,
  DW_AT_encoding = 0x3e,
  DW_AT_type = 0x49,
};

// Forms (DWARF4 §7.5.4, Figure 21).
enum : std::uint64_t {
  DW_FORM_data1 = 0x0b,
  DW_FORM_string = 0x08,
  DW_FORM_strp = 0x0e,  // offset into .debug_str
  DW_FORM_udata = 0x0f,
  DW_FORM_sdata = 0x0d,
  DW_FORM_ref4 = 0x13,
  DW_FORM_flag_present = 0x19,
};

// Base-type encodings (DW_AT_encoding values, DWARF4 §7.8).
enum : std::uint8_t {
  DW_ATE_address = 0x01,
  DW_ATE_boolean = 0x02,
  DW_ATE_float = 0x04,
  DW_ATE_signed = 0x05,
  DW_ATE_signed_char = 0x06,
  DW_ATE_unsigned = 0x07,
  DW_ATE_unsigned_char = 0x08,
};

constexpr std::uint16_t kDwarfVersion = 4;
constexpr std::uint8_t kAddressSize = 8;

}  // namespace pd::dwarf
