// Helper for the weak-scaling application figures (Figs. 5, 6, 7): run one
// proxy across the node axis in all three OS modes and print relative
// performance to Linux (the paper's y-axis; Linux = 100%).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/apps/proxies.hpp"

namespace pd::bench {

struct AppFigureSpec {
  const char* name;
  int ranks_per_node;
  std::uint64_t buf_bytes;
  /// Build the per-rank program.
  std::function<sim::Task<>(mpirt::Rank&)> body;
};

inline apps::RunOutcome run_point(const AppFigureSpec& spec, os::OsMode mode, int nodes) {
  mpirt::ClusterOptions copts;
  copts.nodes = nodes;
  copts.mode = mode;
  copts.mcdram_bytes = 1ull << 30;
  copts.ddr_bytes = 2ull << 30;
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = spec.ranks_per_node;
  wopts.buf_bytes = spec.buf_bytes;
  return apps::run_app(copts, wopts, spec.body);
}

/// Print the figure: one row per node count, Linux at 100%.
inline void print_app_figure(const AppFigureSpec& spec, const std::vector<int>& nodes) {
  TextTable table({"Nodes", "Ranks", "Linux", "McKernel", "McKernel+HFI1",
                   "Linux s", "McK s", "HFI s"});
  for (int n : nodes) {
    std::map<os::OsMode, apps::RunOutcome> res;
    for (os::OsMode mode : all_modes()) res[mode] = run_point(spec, mode, n);
    const double linux_s = res[os::OsMode::linux].runtime_sec;
    auto rel = [&](os::OsMode m) {
      return format_double(100.0 * linux_s / res[m].runtime_sec, 1) + "%";
    };
    table.add_row({std::to_string(n), std::to_string(n * spec.ranks_per_node),
                   rel(os::OsMode::linux), rel(os::OsMode::mckernel),
                   rel(os::OsMode::mckernel_hfi), format_double(linux_s, 4),
                   format_double(res[os::OsMode::mckernel].runtime_sec, 4),
                   format_double(res[os::OsMode::mckernel_hfi].runtime_sec, 4)});
  }
  std::printf("%s — relative performance to Linux (higher is better)\n%s\n", spec.name,
              table.to_string().c_str());
}

}  // namespace pd::bench
