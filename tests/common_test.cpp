// Unit tests for src/common: time conversion, status/result, rng
// determinism, statistics, ring buffer, and formatting.
#include <gtest/gtest.h>

#include <set>

#include "src/common/ring_buffer.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/common/status.hpp"
#include "src/common/time.hpp"
#include "src/common/units.hpp"

namespace pd {
namespace {

using namespace pd::time_literals;

TEST(Time, LiteralsScale) {
  EXPECT_EQ(1_ns, 1000_ps);
  EXPECT_EQ(1_us, 1000_ns);
  EXPECT_EQ(1_ms, 1000_us);
  EXPECT_EQ(1_s, 1000_ms);
}

TEST(Time, FractionalBuilders) {
  EXPECT_EQ(from_ns(0.5), 500);
  EXPECT_EQ(from_us(2.5), 2'500'000);
  EXPECT_DOUBLE_EQ(to_us(from_us(3.25)), 3.25);
}

TEST(Time, TransferTimeRoundsUp) {
  // 1 byte at 12.3 GB/s is ~81 ps; must not round to zero.
  EXPECT_GT(transfer_time(1, 12.3e9), 0);
  // Exact division stays exact: 1000 bytes at 1e12 B/s = 1 ns = 1000 ps.
  EXPECT_EQ(transfer_time(1000, 1e12), 1000);
  EXPECT_EQ(transfer_time(0, 1e9), 0);
}

TEST(Time, TransferTimeScalesLinearly) {
  const Dur one = transfer_time(1_MiB, 12.3e9);
  const Dur four = transfer_time(4_MiB, 12.3e9);
  EXPECT_NEAR(static_cast<double>(four), 4.0 * static_cast<double>(one), 4.0);
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.error(), Errno::ok);
}

TEST(Status, CarriesErrno) {
  Status s = Errno::einval;
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error(), Errno::einval);
  EXPECT_EQ(to_string(s.error()), "EINVAL");
}

TEST(Result, Value) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.error(), Errno::ok);
}

TEST(Result, Error) {
  Result<int> r = Errno::enomem;
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::enomem);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(11);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.1);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(3);
  Rng child = parent.fork();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) {
    seen.insert(parent.next_u64());
    seen.insert(child.next_u64());
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(RunningStats, Basics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Samples, Percentile) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), s.percentile(100));
}

TEST(Samples, BoundedReservoirKeepsExactAggregates) {
  Samples s(64);
  for (int i = 1; i <= 10000; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 10000u);
  EXPECT_DOUBLE_EQ(s.mean(), 5000.5);
  EXPECT_DOUBLE_EQ(s.max(), 10000.0) << "the true max must survive eviction";
  // Percentiles are estimates over the 64-slot reservoir; the estimate must
  // at least land inside the sampled range and be ordered.
  const double p50 = s.percentile(50);
  EXPECT_GT(p50, 1000.0);
  EXPECT_LT(p50, 9000.0);
  EXPECT_LE(s.percentile(95), s.max());
  EXPECT_LE(p50, s.percentile(95));
}

TEST(Samples, MergeSumsCountsAndTracksMax) {
  Samples a, b;
  for (int i = 0; i < 10; ++i) a.add(1.0);
  for (int i = 0; i < 5; ++i) b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 15u);
  EXPECT_DOUBLE_EQ(a.mean(), 25.0 / 15.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(RingBuffer, PushPopFifo) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_TRUE(rb.push(3));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.push(4));
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_TRUE(rb.push(4));
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_FALSE(rb.pop().has_value());
}

TEST(RingBuffer, WrapsManyTimes) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(rb.push(i));
    ASSERT_EQ(rb.pop(), i);
  }
  EXPECT_TRUE(rb.empty());
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512");
  EXPECT_EQ(format_bytes(4_KiB), "4K");
  EXPECT_EQ(format_bytes(4_MiB), "4M");
  EXPECT_EQ(format_bytes(4_KiB + 1), "4097");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "bbbb"});
  t.add_row({"xx", "y"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("a   bbbb"), std::string::npos);
  EXPECT_NE(out.find("xx  y"), std::string::npos);
}

}  // namespace
}  // namespace pd
