#include "src/mem/kernel_space.hpp"

namespace pd::mem {

namespace {
// Page tables index 48 bits; kernel VAs have the sign-extended top bits
// stripped before mapping (the hardware does the same canonicalization).
constexpr VirtAddr canonical48(VirtAddr va) { return va & ((1ull << 48) - 1); }
}  // namespace

Result<KernelAddressSpace> KernelAddressSpace::build(const KernelLayout& layout,
                                                     std::uint64_t phys_bytes,
                                                     PhysAddr image_phys_base) {
  if (!page_aligned(image_phys_base, kPage2M)) return Errno::einval;
  KernelAddressSpace space(layout);

  // Physical direct map: 1 GiB leaves, PA 0 upward. This is where kmalloc
  // pointers land; both kernels must map it identically for §3.1 req. 2.
  const std::uint64_t direct_len =
      std::min<std::uint64_t>(page_ceil(phys_bytes, kPage1G), layout.direct_map.size());
  Status s = space.pt_.map_range(canonical48(layout.direct_map.start), 0, direct_len,
                                 kPage1G, kProtRead | kProtWrite);
  if (!s.ok()) return s.error();

  // Kernel image: 2 MiB leaves at the layout's image range.
  const std::uint64_t image_len = page_ceil(layout.image.size(), kPage2M);
  s = space.pt_.map_range(canonical48(page_floor(layout.image.start, kPage2M)),
                          image_phys_base, image_len, kPage2M,
                          kProtRead | kProtWrite | kProtExec);
  if (!s.ok()) return s.error();

  return space;
}

Status KernelAddressSpace::alias_image(const VaRange& range, PhysAddr phys_base) {
  if (!page_aligned(phys_base, kPage2M)) return Errno::einval;
  const VirtAddr start = page_floor(range.start, kPage2M);
  const std::uint64_t len = page_ceil(range.end, kPage2M) - start;
  return pt_.map_range(canonical48(start), phys_base, len, kPage2M,
                       kProtRead | kProtExec);
}

}  // namespace pd::mem
