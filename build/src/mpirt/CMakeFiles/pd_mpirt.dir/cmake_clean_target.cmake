file(REMOVE_RECURSE
  "libpd_mpirt.a"
)
