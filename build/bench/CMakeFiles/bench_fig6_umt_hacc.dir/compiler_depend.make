# Empty compiler generated dependencies file for bench_fig6_umt_hacc.
# This may be replaced when dependencies are built.
