// Failure-injection tests: engine resets under live traffic, debug-info
// corruption and missing-field binds, callback faults, foreign-free policy
// failures — the unhappy paths the architecture must survive.
#include <gtest/gtest.h>

#include "bench/bench_common.hpp"
#include "src/common/units.hpp"
#include "src/dwarf/constants.hpp"
#include "src/dwarf/writer.hpp"
#include "src/hfi/driver.hpp"
#include "src/ikc/transport.hpp"
#include "src/mpirt/world.hpp"
#include "src/pico/hfi_picodriver.hpp"

#define CO_ASSERT_TRUE(cond)                          \
  do {                                                \
    const bool co_assert_ok_ = static_cast<bool>(cond); \
    EXPECT_TRUE(co_assert_ok_) << #cond;              \
    if (!co_assert_ok_) co_return;                    \
  } while (0)

namespace pd {
namespace {

using namespace pd::time_literals;

/// Flip one SDMA engine's state (a "reset in progress") through the
/// driver's own layout view.
void set_engine_state(hfi::HfiDriver& driver, os::LinuxKernel& linux_kernel, int engine_id,
                      hfi::SdmaStates state) {
  const auto* eng_def = driver.layouts().structure("sdma_engine");
  const auto* state_def = driver.layouts().structure("sdma_state");
  auto bytes = linux_kernel.kheap().data(driver.sdma_engine_image(engine_id));
  hfi::StructImage img(bytes.subspan(eng_def->field("state")->offset, state_def->byte_size),
                       state_def);
  img.write<std::uint32_t>("current_state", static_cast<std::uint32_t>(state));
}

TEST(FailureInjection, EngineResetMidRunFallsBackAndRecovers) {
  mpirt::ClusterOptions copts;
  copts.nodes = 2;
  copts.mode = os::OsMode::mckernel_hfi;
  copts.mcdram_bytes = 256ull << 20;
  copts.ddr_bytes = 1ull << 30;
  mpirt::Cluster cluster(copts);
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = 2;
  mpirt::MpiWorld world(cluster, wopts);

  // Halt every engine on node 0 shortly after start; bring them back
  // later. Fast-path writevs in the window must take the Linux fallback;
  // traffic must nonetheless complete.
  auto& node0 = cluster.node(0);
  cluster.engine().schedule_after(from_us(400), [&] {
    for (int e = 0; e < node0.device->num_engines(); ++e)
      set_engine_state(*node0.driver, *node0.linux_kernel, e,
                       hfi::SdmaStates::s50_hw_halt_wait);
  });
  cluster.engine().schedule_after(from_ms(3.0), [&] {
    for (int e = 0; e < node0.device->num_engines(); ++e)
      set_engine_state(*node0.driver, *node0.linux_kernel, e,
                       hfi::SdmaStates::s99_running);
  });

  int done = 0;
  world.run([&](mpirt::Rank& rank) -> sim::Task<> {
    co_await rank.init();
    const int peer = (rank.id() + 2) % 4;
    for (int i = 0; i < 6; ++i) {
      auto r = rank.irecv(peer, 100 + i, 256ull << 10);
      auto s = rank.isend(peer, 100 + i, 256ull << 10);
      co_await rank.wait(std::move(s));
      co_await rank.wait(std::move(r));
      co_await rank.compute(from_ms(0.6));
    }
    co_await rank.finalize();
    ++done;
  });
  EXPECT_EQ(done, 4);
  EXPECT_GT(node0.pico->fallbacks(), 0u) << "halted engines must trigger the Linux path";
  EXPECT_GT(node0.pico->fast_writevs(), node0.pico->fallbacks())
      << "after recovery the fast path must be back in use";
  EXPECT_EQ(node0.driver->writev_calls(), node0.pico->fallbacks())
      << "the unmodified Linux path served exactly the fallback calls";
}

TEST(FailureInjection, StalledServiceLoopsDegradeOffloadsInsteadOfHanging) {
  // Every IKC service loop on node 0 stalls before traffic starts: ring
  // submissions there must walk the timeout → retry → degrade ladder and
  // finish on the legacy direct path, while node 1's rings stay healthy.
  // The run completing at all is the main assertion — a lost request or a
  // missed degradation would deadlock world.run().
  mpirt::ClusterOptions copts;
  copts.nodes = 2;
  copts.mode = os::OsMode::mckernel;
  copts.mcdram_bytes = 256ull << 20;
  copts.ddr_bytes = 1ull << 30;
  copts.cfg.ikc_mode = os::IkcMode::ring;
  copts.cfg.ikc_deadline = from_us(200);  // short: the ladder must resolve fast
  copts.cfg.ikc_max_retries = 1;
  copts.cfg.ikc_retry_backoff = from_us(1);
  copts.cfg.ikc_stall_threshold = 1;
  mpirt::Cluster cluster(copts);
  auto& node0 = cluster.node(0);
  // Stall after startup (like the engine-reset test): a stall during MPI
  // init would leave node 0's device contexts unopened while peers already
  // send init-barrier traffic at them, which no transport can fix.
  cluster.engine().schedule_after(from_us(400), [&] {
    for (int l = 0; l < node0.ihk->transport().num_loops(); ++l)
      node0.ihk->transport().inject_stall(l, true);
  });

  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = 2;
  mpirt::MpiWorld world(cluster, wopts);
  int done = 0;
  world.run([&](mpirt::Rank& rank) -> sim::Task<> {
    co_await rank.init();
    const int peer = (rank.id() + 2) % 4;
    for (int i = 0; i < 4; ++i) {
      auto r = rank.irecv(peer, 200 + i, 128ull << 10);
      auto s = rank.isend(peer, 200 + i, 128ull << 10);
      co_await rank.wait(std::move(s));
      co_await rank.wait(std::move(r));
      co_await rank.compute(from_ms(0.2));
    }
    co_await rank.finalize();
    ++done;
  });
  EXPECT_EQ(done, 4) << "all ranks must complete despite the stalled loops";

  const auto& prof0 = node0.linux_kernel->profiler();
  EXPECT_GT(prof0.counter("ikc.ring.timeout"), 0u);
  EXPECT_GT(prof0.counter("ikc.ring.degraded"), 0u)
      << "node 0 offloads must fall back to the direct path";
  // Node 1's transport never saw a stall: everything rode the rings.
  const auto& prof1 = cluster.node(1).linux_kernel->profiler();
  EXPECT_EQ(prof1.counter("ikc.ring.degraded"), 0u);
  EXPECT_GT(prof1.counter("ikc.ring.enqueue"), 0u);
}

/// Bare ring-mode transport for the reply-path failure rungs.
struct ReplyFaultHarness {
  explicit ReplyFaultHarness(os::Config c) : cfg(std::move(c)) {
    linux_kernel = std::make_unique<os::LinuxKernel>(engine, cfg);
    transport = std::make_unique<ikc::IkcTransport>(
        engine, cfg, linux_kernel->service_cpus(), linux_kernel->profiler(), queueing,
        linux_kernel->spinlock_abi());
  }
  std::uint64_t counter(const std::string& name) const {
    return linux_kernel->profiler().counter(name);
  }
  /// Offload a `work`-long no-op service; its errno lands in `errs`, its
  /// value in `vals` (submission order).
  void submit(long tag, Dur work, std::vector<Errno>& errs, std::vector<long>& vals) {
    submit_on(0, 0, tag, work, errs, vals);
  }
  /// Same, but on an explicit channel under an explicit tenant identity.
  void submit_on(int channel, ikc::JobId job, long tag, Dur work,
                 std::vector<Errno>& errs, std::vector<long>& vals) {
    sim::spawn(engine, [](ReplyFaultHarness& h, int ch, ikc::JobId j, long t, Dur w,
                          std::vector<Errno>& es, std::vector<long>& vs) -> sim::Task<> {
      auto r = co_await h.transport->offload(
          [&h, t, w]() -> sim::Task<Result<long>> {
            co_await h.engine.delay(w);
            co_return t;
          },
          ikc::Priority::bulk, ch, j);
      es.push_back(r.error());
      vs.push_back(r.ok() ? *r : -1L);
    }(*this, channel, job, tag, work, errs, vals));
  }

  sim::Engine engine;
  os::Config cfg;
  Samples queueing;
  std::unique_ptr<os::LinuxKernel> linux_kernel;
  std::unique_ptr<ikc::IkcTransport> transport;
};

os::Config reply_fault_cfg() {
  os::Config cfg;
  cfg.ikc_mode = os::IkcMode::ring;
  cfg.linux_service_cpus = 1;
  cfg.ikc_channels = 1;
  cfg.ikc_reply_poll_budget = from_us(2);  // consumers park early
  return cfg;
}

TEST(FailureInjection, FullReplyRingFallsBackToPerRequestWakeups) {
  // A 1-slot reply ring with every consumer parked: posts beyond the first
  // must take the per-request wakeup fallback instead of dropping or
  // blocking the service loop. Everything still completes.
  auto cfg = reply_fault_cfg();
  cfg.ikc_reply_depth = 1;
  cfg.ikc_reply_autosize = false;  // keep the ring pinned at 1 slot
  ReplyFaultHarness h(cfg);
  std::vector<Errno> errs;
  std::vector<long> vals;
  constexpr int kOps = 6;
  for (int i = 0; i < kOps; ++i) h.submit(i, from_us(40), errs, vals);
  h.engine.run();
  ASSERT_EQ(vals.size(), static_cast<std::size_t>(kOps));
  for (int i = 0; i < kOps; ++i) EXPECT_EQ(errs[static_cast<std::size_t>(i)], Errno::ok);
  EXPECT_GE(h.counter("ikc.reply.ring_full"), 1u)
      << "a 1-slot ring under a parked batch must overflow";
  EXPECT_GE(h.counter("ikc.reply.wakeup"), 1u) << "overflow must degrade to wakeups";
  EXPECT_EQ(h.transport->reply_ring_depth(0), 0u);
  EXPECT_EQ(h.transport->reply_ring_capacity(0), 1u) << "autosize off: depth must not change";
}

TEST(FailureInjection, ReplyRingAutosizesUnderSustainedOverflow) {
  // Same squeeze with autosizing on: repeated ring_full strikes must grow
  // the ring (doubling, capped) so steady-state stops paying the fallback
  // wakeup — and the traffic still completes.
  auto cfg = reply_fault_cfg();
  cfg.ikc_reply_depth = 1;
  cfg.ikc_reply_autosize_threshold = 2;
  cfg.ikc_reply_max_depth = 8;
  ReplyFaultHarness h(cfg);
  std::vector<Errno> errs;
  std::vector<long> vals;
  constexpr int kOps = 24;
  for (int i = 0; i < kOps; ++i) h.submit(i, from_us(40), errs, vals);
  h.engine.run();
  ASSERT_EQ(vals.size(), static_cast<std::size_t>(kOps));
  for (int i = 0; i < kOps; ++i) EXPECT_EQ(errs[static_cast<std::size_t>(i)], Errno::ok);
  EXPECT_GE(h.counter("ikc.reply.autosize_grow"), 1u)
      << "sustained overflow must trigger a grow";
  EXPECT_GT(h.transport->reply_ring_capacity(0), 1u);
  EXPECT_LE(h.transport->reply_ring_capacity(0), 8u) << "growth must respect the cap";
  EXPECT_EQ(h.transport->reply_ring_depth(0), 0u) << "notifications must be reclaimed";
}

TEST(FailureInjection, ConsumerDeathDropsCompletionsWithoutWedgingTheLoop) {
  // The LWK process owning channel 0 dies mid-traffic: in-flight offloads
  // resolve to EINTR, queued entries are skipped as dead, completions the
  // loop already owes are dropped with a counter — and the loop itself
  // keeps serving fresh traffic afterwards.
  auto cfg = reply_fault_cfg();
  ReplyFaultHarness h(cfg);
  std::vector<Errno> errs;
  std::vector<long> vals;
  constexpr int kOps = 4;
  for (int i = 0; i < kOps; ++i) h.submit(i, from_us(40), errs, vals);
  h.engine.schedule_after(from_us(10), [&] { h.transport->inject_consumer_death(0); });
  h.engine.run();
  ASSERT_EQ(errs.size(), static_cast<std::size_t>(kOps));
  for (int i = 0; i < kOps; ++i)
    EXPECT_EQ(errs[static_cast<std::size_t>(i)], Errno::eintr)
        << "op " << i << " must observe its consumer's death";
  EXPECT_GE(h.counter("ikc.reply.consumer_dead") + h.counter("ikc.ring.dead_skip"), 1u)
      << "the service side must account the dropped work";

  // The channel is reusable: a fresh consumer's offload completes normally.
  h.submit(99, from_us(5), errs, vals);
  h.engine.run();
  ASSERT_EQ(vals.size(), static_cast<std::size_t>(kOps) + 1);
  EXPECT_EQ(errs.back(), Errno::ok);
  EXPECT_EQ(vals.back(), 99);
  EXPECT_GT(h.transport->loop_served(0), 0u);
}

TEST(FairnessHarness, JainIndexScoresAllZeroSharesAsStarvation) {
  // A window in which no tenant completed anything is universal starvation,
  // not perfect fairness: it must score 0.0, never slip past a jain gate.
  EXPECT_DOUBLE_EQ(bench::jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(bench::jain_index({0.0, 0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(bench::jain_index({5.0, 5.0}), 1.0);
  EXPECT_NEAR(bench::jain_index({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(FailureInjection, FloodingTenantIsThrottledAloneVictimsStayBounded) {
  // Misbehaving-tenant rung: job 0 floods its channel with 12 saturating
  // streams while 7 victims run a normal backlogged profile. With per-job
  // in-flight credits (2/job) and the weighted-fair drain, the flooder —
  // and only the flooder — must be throttled (EAGAIN / credit waits), and
  // the victims' tail queueing must stay within 2x of the same run with no
  // flooder present at all.
  constexpr int kJobs = 8;
  pd::os::Config cfg;
  cfg.ikc_mode = pd::os::IkcMode::ring;
  cfg.ikc_channels = kJobs;
  cfg.ikc_numa_pin = false;
  cfg.ikc_job_credits = 2;
  cfg.ikc_deadline = from_ms(500.0);  // saturation queueing is the point
  auto specs = [&](bool with_flooder) {
    std::vector<bench::JobSpec> s(kJobs);
    for (int j = 0; j < kJobs; ++j) {
      s[static_cast<std::size_t>(j)].submitters = (j == 0) ? (with_flooder ? 12 : 0) : 2;
      if (j == 0) s[static_cast<std::size_t>(j)].gap = from_us(0);
    }
    return s;
  };
  const Dur horizon = from_ms(3.0);
  const auto base = bench::run_fairness_storm(cfg, specs(false), horizon);
  const auto flood = bench::run_fairness_storm(cfg, specs(true), horizon);

  auto victim_worst_p95 = [](const bench::FairnessResult& r) {
    double worst = 0;
    for (const auto& o : r.jobs)
      if (o.job != 0 && o.queue.p95_us > worst) worst = o.queue.p95_us;
    return worst;
  };
  const double base_p95 = victim_worst_p95(base);
  const double flood_p95 = victim_worst_p95(flood);
  ASSERT_GT(base_p95, 0.0) << "baseline victims must be queueing at all";
  EXPECT_LE(flood_p95, 2.0 * base_p95)
      << "victim tail queueing must stay bounded under the flood";

  const auto& flooder = flood.jobs[0];
  EXPECT_GT(flooder.eagain + flooder.credit_waits, 0u)
      << "the credit gate must throttle the flooder";
  EXPECT_GT(flooder.completed, 0u) << "throttled, not starved";
  for (const auto& o : flood.jobs) {
    if (o.job == 0) continue;
    EXPECT_EQ(o.eagain, 0u) << "victim " << o.job << " must never see EAGAIN";
    EXPECT_EQ(o.credit_waits, 0u)
        << "victim " << o.job << " fits inside its own credit cap";
    EXPECT_GT(o.completed, 0u) << "victim " << o.job << " must keep completing";
  }
}

TEST(FailureInjection, TenantNeverDrainingRepliesOnlyHurtsItself) {
  // A tenant that never drains its replies (its completion doorbells are
  // dropped, so notifications pile up in its reply ring): its own offloads
  // must recover through the self-drain watchdog instead of hanging, the
  // neighbour sharing the loop must complete undisturbed on plain
  // doorbells, and the service loop must stay healthy.
  auto cfg = reply_fault_cfg();
  cfg.ikc_channels = 2;
  cfg.ikc_reply_deadline = from_us(300);  // bound the self-drain delay
  ReplyFaultHarness h(cfg);
  h.transport->inject_reply_doorbell_loss(0, true);

  std::vector<Errno> bad_errs, good_errs;
  std::vector<long> bad_vals, good_vals;
  constexpr int kOps = 6;
  // work > reply_poll_budget (2us): consumers park, so completion depends
  // on the doorbell — the exact signal the misbehaving tenant loses.
  for (int i = 0; i < kOps; ++i) {
    h.submit_on(0, /*job=*/7, i, from_us(40), bad_errs, bad_vals);
    h.submit_on(1, /*job=*/8, 100 + i, from_us(40), good_errs, good_vals);
  }
  h.engine.run();

  ASSERT_EQ(bad_errs.size(), static_cast<std::size_t>(kOps));
  ASSERT_EQ(good_errs.size(), static_cast<std::size_t>(kOps));
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(bad_errs[static_cast<std::size_t>(i)], Errno::ok)
        << "lost doorbells must degrade to self-drain, never lose op " << i;
    EXPECT_EQ(good_errs[static_cast<std::size_t>(i)], Errno::ok);
  }
  EXPECT_GE(h.counter("ikc.reply.doorbell_lost"), 1u)
      << "the fault must actually have fired";
  EXPECT_GE(h.counter("ikc.reply.self_drain"), 1u)
      << "parked consumers behind lost doorbells recover via the watchdog";
  for (int l = 0; l < h.transport->num_loops(); ++l)
    EXPECT_FALSE(h.transport->loop_suspect(l)) << "loop " << l << " stays healthy";

  // The misbehaving tenant repaired (doorbells restored): traffic on its
  // channel goes back to the normal wakeup path.
  h.transport->inject_reply_doorbell_loss(0, false);
  const auto self_drains = h.counter("ikc.reply.self_drain");
  h.submit_on(0, /*job=*/7, 999, from_us(40), bad_errs, bad_vals);
  h.engine.run();
  ASSERT_EQ(bad_vals.size(), static_cast<std::size_t>(kOps) + 1);
  EXPECT_EQ(bad_errs.back(), Errno::ok);
  EXPECT_EQ(bad_vals.back(), 999);
  EXPECT_EQ(h.counter("ikc.reply.self_drain"), self_drains)
      << "with doorbells back no watchdog recovery is needed";
}

TEST(FailureInjection, RepartitionUnderFloodLosesNoOffloads) {
  // Elastic rung (§8.7): service loops retire and attach repeatedly while a
  // flood is in flight. Every offload must resolve exactly once — nothing
  // lost in a drained ring, nothing double-executed by a re-shard — and the
  // skip accounting must balance: with no timeouts and no consumer deaths,
  // the drain-before-handover leaves zero stale or dead entries behind.
  os::Config cfg;
  cfg.ikc_mode = os::IkcMode::ring;
  cfg.linux_service_cpus = 3;
  cfg.elastic_max_service_cpus = 4;
  cfg.ikc_channels = 8;
  ReplyFaultHarness h(cfg);

  std::vector<Errno> errs;
  std::vector<long> vals;
  std::uint64_t executed = 0;
  constexpr int kOps = 160;
  for (int i = 0; i < kOps; ++i) {
    sim::spawn(h.engine, [](ReplyFaultHarness& hh, int ch, long tag, std::uint64_t& ex,
                            std::vector<Errno>& es, std::vector<long>& vs) -> sim::Task<> {
      auto r = co_await hh.transport->offload(
          [&hh, tag, &ex]() -> sim::Task<Result<long>> {
            co_await hh.engine.delay(from_us(3));
            ++ex;
            co_return tag;
          },
          ikc::Priority::bulk, ch);
      es.push_back(r.error());
      vs.push_back(r.ok() ? *r : -1L);
    }(h, i % cfg.ikc_channels, i, executed, errs, vals));
    if (i % 16 == 15) {
      // Interleave submissions with a shrink/grow cycle mid-flood.
      sim::spawn(h.engine, [](ReplyFaultHarness& hh, Dur at) -> sim::Task<> {
        co_await hh.engine.delay(at);
        const Status down = co_await hh.transport->retire_loop();
        EXPECT_TRUE(down.ok());
        co_await hh.engine.delay(from_us(30));
        const Status up = co_await hh.transport->attach_loop();
        EXPECT_TRUE(up.ok());
      }(h, from_us(20 * (i / 16 + 1))));
    }
  }
  h.engine.run();

  ASSERT_EQ(errs.size(), static_cast<std::size_t>(kOps));
  for (int i = 0; i < kOps; ++i)
    EXPECT_EQ(errs[static_cast<std::size_t>(i)], Errno::ok) << "op " << i;
  EXPECT_EQ(executed, static_cast<std::uint64_t>(kOps))
      << "every offload executed exactly once across the repartitions";
  std::vector<bool> seen(kOps, false);
  for (long v : vals) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, static_cast<long>(kOps));
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]) << "tag " << v << " returned twice";
    seen[static_cast<std::size_t>(v)] = true;
  }

  EXPECT_GE(h.counter("ikc.elastic.loop_retired"), 1u);
  EXPECT_EQ(h.counter("ikc.elastic.loop_retired"), h.counter("ikc.elastic.loop_attached"));
  EXPECT_EQ(h.transport->active_loops(), 3);
  // Skip accounting balances: a lossless drain leaves no entry to skip.
  EXPECT_EQ(h.counter("ikc.ring.timeout"), 0u);
  EXPECT_EQ(h.counter("ikc.ring.degraded"), 0u);
  EXPECT_EQ(h.counter("ikc.ring.stale_skip"), 0u)
      << "a retiring loop must hand its entries over, not let them time out";
  EXPECT_EQ(h.counter("ikc.ring.dead_skip"), 0u);
}

TEST(FailureInjection, ConsumerDeathDuringRepartitionIsAccountedNotLost) {
  // Harsher elastic rung: a consumer dies while its loop is being retired.
  // The dead channel's ops resolve to EINTR and land in dead_skip (or the
  // reply-side consumer_dead counter); every other channel's ops complete
  // normally across the handover; the transport ends healthy.
  os::Config cfg;
  cfg.ikc_mode = os::IkcMode::ring;
  cfg.linux_service_cpus = 2;
  cfg.ikc_channels = 4;
  ReplyFaultHarness h(cfg);

  std::vector<Errno> dead_errs, live_errs;
  std::vector<long> dead_vals, live_vals;
  constexpr int kOps = 8;
  for (int i = 0; i < kOps; ++i) {
    h.submit_on(0, /*job=*/1, i, from_us(40), dead_errs, dead_vals);
    h.submit_on(1, /*job=*/2, 100 + i, from_us(40), live_errs, live_vals);
  }
  h.engine.schedule_after(from_us(10), [&] { h.transport->inject_consumer_death(0); });
  sim::spawn(h.engine, [](ReplyFaultHarness& hh) -> sim::Task<> {
    co_await hh.engine.delay(from_us(15));
    const Status s = co_await hh.transport->retire_loop();
    EXPECT_TRUE(s.ok());
  }(h));
  h.engine.run();

  ASSERT_EQ(dead_errs.size(), static_cast<std::size_t>(kOps));
  ASSERT_EQ(live_errs.size(), static_cast<std::size_t>(kOps));
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(dead_errs[static_cast<std::size_t>(i)], Errno::eintr)
        << "dead-channel op " << i << " must observe the death, not vanish";
    EXPECT_EQ(live_errs[static_cast<std::size_t>(i)], Errno::ok)
        << "live-channel op " << i << " must survive the concurrent retire";
  }
  EXPECT_GE(h.counter("ikc.reply.consumer_dead") + h.counter("ikc.ring.dead_skip"), 1u)
      << "the dropped work must be accounted";
  EXPECT_EQ(h.counter("ikc.ring.stale_skip"), 0u);
  EXPECT_EQ(h.transport->active_loops(), 1);

  // The shrunk transport still serves both channels.
  h.submit_on(0, /*job=*/1, 777, from_us(5), dead_errs, dead_vals);
  h.submit_on(1, /*job=*/2, 888, from_us(5), live_errs, live_vals);
  h.engine.run();
  EXPECT_EQ(dead_errs.back(), Errno::ok);
  EXPECT_EQ(dead_vals.back(), 777);
  EXPECT_EQ(live_errs.back(), Errno::ok);
  EXPECT_EQ(live_vals.back(), 888);
}

TEST(FailureInjection, BindRejectsModuleMissingAField) {
  // Ship a module whose debug info lacks a structure the PicoDriver
  // needs: bind must fail with ENOENT and install nothing.
  sim::Engine engine;
  os::Config cfg;
  os::LinuxKernel linux_kernel(engine, cfg);
  os::Ihk ihk(engine, cfg, linux_kernel);
  os::McKernel mck(engine, cfg, ihk, true);

  dwarf::InfoBuilder b;
  auto u32 = b.add_base_type("unsigned int", 4, dwarf::DW_ATE_unsigned);
  b.add_struct("unrelated", 8, {{"x", u32, 0}});
  auto dbg = b.build("p", "m");
  dwarf::ModuleBinary module;
  module.set_section(".debug_abbrev", dbg.abbrev);
  module.set_section(".debug_info", dbg.info);

  auto binding = pico::PicoBinding::bind(mck, linux_kernel, module,
                                         {{"sdma_state", {"current_state"}}});
  EXPECT_EQ(binding.error(), Errno::enoent);
}

TEST(FailureInjection, BindRejectsCorruptDebugInfo) {
  sim::Engine engine;
  os::Config cfg;
  os::LinuxKernel linux_kernel(engine, cfg);
  os::Ihk ihk(engine, cfg, linux_kernel);
  os::McKernel mck(engine, cfg, ihk, true);

  dwarf::ModuleBinary module;
  module.set_section(".debug_abbrev", {0xFF, 0xFF, 0xFF});
  module.set_section(".debug_info", {0x01, 0x02});
  auto binding = pico::PicoBinding::bind(mck, linux_kernel, module,
                                         {{"sdma_state", {"current_state"}}});
  EXPECT_FALSE(binding.ok());
}

TEST(FailureInjection, BindRejectsMissingDebugSections) {
  sim::Engine engine;
  os::Config cfg;
  os::LinuxKernel linux_kernel(engine, cfg);
  os::Ihk ihk(engine, cfg, linux_kernel);
  os::McKernel mck(engine, cfg, ihk, true);
  dwarf::ModuleBinary stripped;  // a stripped module: no debug info at all
  auto binding =
      pico::PicoBinding::bind(mck, linux_kernel, stripped, {{"sdma_state", {"x"}}});
  EXPECT_EQ(binding.error(), Errno::enoent);
}

TEST(FailureInjection, OriginalAllocatorRejectsIrqSideFree) {
  // Boot the LWK with the unified layout but the *original* allocator
  // policy: the IRQ-side kfree must fail and the block must leak rather
  // than corrupt (the exact §3.3 hazard).
  mem::KernelHeap heap({60, 61}, mem::ForeignFreePolicy::fail);
  auto block = heap.kmalloc(192, 60);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(heap.kfree(*block, /*linux cpu=*/1).error(), Errno::eperm);
  EXPECT_EQ(heap.live_blocks(), 1u);
  EXPECT_EQ(heap.stats().rejected_frees, 1u);
  // The owning core can still clean up.
  EXPECT_TRUE(heap.kfree(*block, 60).ok());
}

TEST(FailureInjection, WritevOnUnmappedBufferFaults) {
  mpirt::ClusterOptions copts;
  copts.nodes = 1;
  copts.mode = os::OsMode::linux;
  copts.mcdram_bytes = 256ull << 20;
  copts.ddr_bytes = 1ull << 30;
  mpirt::Cluster cluster(copts);
  auto proc = cluster.make_process(0, 0);
  sim::spawn(cluster.engine(), [](os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    hfi::SdmaReqHeader hdr;
    hdr.wire.src_node = 0;
    hdr.wire.dst_node = 0;
    hdr.wire.dst_ctxt = 0;
    std::vector<os::IoVec> iov{
        os::IoVec{reinterpret_cast<mem::VirtAddr>(&hdr), sizeof hdr},
        os::IoVec{0xDEAD'0000, 64ull << 10}};  // never mapped
    auto r = co_await p.writev(*fd, std::move(iov));
    EXPECT_EQ(r.error(), Errno::efault);
    // Failed pin must not leak partial pins.
    EXPECT_EQ(p.as().pinned_frame_count(), 0u);
  }(*proc));
  cluster.engine().run();
}

TEST(FailureInjection, TidUpdateOnUnmappedBufferFaults) {
  mpirt::ClusterOptions copts;
  copts.nodes = 1;
  copts.mode = os::OsMode::mckernel_hfi;
  copts.mcdram_bytes = 256ull << 20;
  copts.ddr_bytes = 1ull << 30;
  mpirt::Cluster cluster(copts);
  auto proc = cluster.make_process(0, 0);
  sim::spawn(cluster.engine(), [](os::Process& p, hw::HfiDevice& dev) -> sim::Task<> {
    auto fd = co_await p.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    hfi::TidUpdateArgs args;
    args.vaddr = 0xBAD0'0000;
    args.length = 64ull << 10;
    auto r = co_await p.ioctl(*fd, hfi::kTidUpdate, &args);
    EXPECT_EQ(r.error(), Errno::efault);
    EXPECT_EQ(dev.rcv_array().in_use(), 0u);
  }(*proc, *cluster.node(0).device));
  cluster.engine().run();
}

}  // namespace
}  // namespace pd
