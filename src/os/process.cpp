#include "src/os/process.hpp"

#include "src/mem/types.hpp"

namespace pd::os {

namespace {
constexpr mem::VirtAddr kUserMmapBase = 0x0000'2AAA'0000'0000ull;
}  // namespace

Process::Process(LinuxKernel& kernel, mem::PhysMap& phys, int node, int ctxt, std::uint64_t seed)
    : linux_(&kernel), node_(node), ctxt_(ctxt), rng_(seed) {
  as_ = std::make_unique<mem::AddressSpace>(phys, mem::BackingPolicy::linux_4k,
                                            mem::MemKind::mcdram, kUserMmapBase, seed ^ 0x5A5A);
}

Process::Process(McKernel& kernel, mem::PhysMap& phys, int node, int ctxt, std::uint64_t seed)
    : mck_(&kernel), node_(node), ctxt_(ctxt), rng_(seed) {
  as_ = std::make_unique<mem::AddressSpace>(phys, mem::BackingPolicy::lwk_contig,
                                            mem::MemKind::mcdram, kUserMmapBase, seed ^ 0x5A5A);
}

OpenFile* Process::file(int fd) {
  auto it = files_.find(fd);
  return it == files_.end() ? nullptr : &it->second;
}

void Process::account(const char* name, Time start) {
  kernel().profiler().record(name, engine().now() - start);
}

sim::Task<Result<int>> Process::open(const std::string& dev_name) {
  const Time t0 = engine().now();
  CharDevice* dev = linux_kernel().device(dev_name);
  if (dev == nullptr) {
    account("open", t0);
    co_return Errno::enoent;
  }
  const int fd = next_fd_++;
  OpenFile& f = files_[fd];
  f.fd = fd;
  f.proc = this;
  f.dev = dev;
  f.ctxt = ctxt_;  // desired hardware receive context (assignment request)

  Result<long> r = Errno::enosys;
  if (!on_lwk()) {
    co_await engine().delay(cfg().syscall_entry);
    r = co_await dev->open(f);
  } else {
    // Device open is never fast-pathed: the proxy calls the Linux driver,
    // which initializes all the internal state the fast path later reuses.
    r = co_await mck_->ihk().offload(
        [&]() -> sim::Task<Result<long>> { co_return co_await dev->open(f); },
        ikc::Priority::control, ctxt_, job_);
  }
  account("open", t0);
  if (!r.ok()) {
    files_.erase(fd);
    co_return r.error();
  }
  co_return fd;
}

sim::Task<Result<long>> Process::writev(int fd, std::vector<IoVec> iov) {
  // The vector lives in this coroutine's frame, so the span stays valid
  // across every suspension of the inner call.
  co_return co_await writev(fd, std::span<const IoVec>(iov));
}

sim::Task<Result<long>> Process::writev(int fd, std::span<const IoVec> iov) {
  const Time t0 = engine().now();
  OpenFile* f = file(fd);
  if (f == nullptr) {
    account("writev", t0);
    co_return Errno::ebadf;
  }
  Result<long> r = Errno::enosys;
  if (!on_lwk()) {
    co_await engine().delay(cfg().syscall_entry);
    r = co_await f->dev->writev(*f, iov);
  } else if (const FastPathOps* fp = mck_->fastpath(*f->dev); fp != nullptr && fp->writev) {
    co_await engine().delay(cfg().lwk_syscall_entry);
    r = co_await fp->writev(*f, iov);
  } else {
    r = co_await mck_->ihk().offload(
        [&]() -> sim::Task<Result<long>> { co_return co_await f->dev->writev(*f, iov); },
        ikc::Priority::bulk, ctxt_, job_);
  }
  account("writev", t0);
  co_return r;
}

sim::Task<Result<long>> Process::ioctl(int fd, unsigned long cmd, void* arg) {
  const Time t0 = engine().now();
  OpenFile* f = file(fd);
  if (f == nullptr) {
    account("ioctl", t0);
    co_return Errno::ebadf;
  }
  Result<long> r = Errno::enosys;
  const FastPathOps* fp = on_lwk() ? mck_->fastpath(*f->dev) : nullptr;
  if (!on_lwk()) {
    co_await engine().delay(cfg().syscall_entry);
    r = co_await f->dev->ioctl(*f, cmd, arg);
  } else if (fp != nullptr && fp->ioctl && fp->ioctl_handles && fp->ioctl_handles(cmd)) {
    // Only the TID registration commands are ported (3 of ~a dozen).
    co_await engine().delay(cfg().lwk_syscall_entry);
    r = co_await fp->ioctl(*f, cmd, arg);
  } else {
    r = co_await mck_->ihk().offload(
        [&]() -> sim::Task<Result<long>> { co_return co_await f->dev->ioctl(*f, cmd, arg); },
        ikc::Priority::control, ctxt_, job_);
  }
  account("ioctl", t0);
  co_return r;
}

sim::Task<Result<long>> Process::poll_fd(int fd) {
  const Time t0 = engine().now();
  OpenFile* f = file(fd);
  if (f == nullptr) {
    account("poll", t0);
    co_return Errno::ebadf;
  }
  Result<long> r = Errno::enosys;
  if (!on_lwk()) {
    co_await engine().delay(cfg().syscall_entry);
    r = co_await f->dev->poll(*f);
  } else {
    r = co_await mck_->ihk().offload(
        [&]() -> sim::Task<Result<long>> { co_return co_await f->dev->poll(*f); },
        ikc::Priority::control, ctxt_, job_);
  }
  account("poll", t0);
  co_return r;
}

sim::Task<Result<long>> Process::read_fd(int fd, std::uint64_t len) {
  const Time t0 = engine().now();
  OpenFile* f = file(fd);
  if (f == nullptr) {
    account("read", t0);
    co_return Errno::ebadf;
  }
  Result<long> r = Errno::enosys;
  if (!on_lwk()) {
    co_await engine().delay(cfg().syscall_entry);
    r = co_await f->dev->read(*f, len);
  } else {
    r = co_await mck_->ihk().offload(
        [&]() -> sim::Task<Result<long>> { co_return co_await f->dev->read(*f, len); },
        ikc::Priority::bulk, ctxt_, job_);
  }
  account("read", t0);
  co_return r;
}

sim::Task<Result<long>> Process::lseek(int fd, long offset, int whence) {
  const Time t0 = engine().now();
  OpenFile* f = file(fd);
  if (f == nullptr) {
    account("lseek", t0);
    co_return Errno::ebadf;
  }
  Result<long> r = Errno::enosys;
  if (!on_lwk()) {
    co_await engine().delay(cfg().syscall_entry);
    r = co_await f->dev->lseek(*f, offset, whence);
  } else {
    r = co_await mck_->ihk().offload(
        [&]() -> sim::Task<Result<long>> {
          co_return co_await f->dev->lseek(*f, offset, whence);
        },
        ikc::Priority::control, ctxt_, job_);
  }
  account("lseek", t0);
  co_return r;
}

sim::Task<Result<mem::VirtAddr>> Process::mmap_dev(int fd, std::uint64_t len,
                                                   std::uint64_t offset) {
  const Time t0 = engine().now();
  OpenFile* f = file(fd);
  if (f == nullptr) {
    account("mmap", t0);
    co_return Errno::ebadf;
  }
  Result<mem::PhysAddr> pa = Errno::enosys;
  if (!on_lwk()) {
    co_await engine().delay(cfg().syscall_entry);
    pa = co_await f->dev->mmap(*f, len, offset);
  } else {
    // Offloaded to Linux for the driver part; the LWK installs the mapping
    // into its own page tables afterwards (paper's device-mapping path).
    Result<long> got = co_await mck_->ihk().offload(
        [&]() -> sim::Task<Result<long>> {
          auto r = co_await f->dev->mmap(*f, len, offset);
          if (!r.ok()) co_return r.error();
          co_return static_cast<long>(*r);
        },
        ikc::Priority::control, ctxt_, job_);
    if (got.ok())
      pa = static_cast<mem::PhysAddr>(*got);
    else
      pa = got.error();
  }
  if (!pa.ok()) {
    account("mmap", t0);
    co_return pa.error();
  }
  auto va = as_->mmap_device(*pa, len, mem::kProtRead | mem::kProtWrite);
  account("mmap", t0);
  if (!va.ok()) co_return va.error();
  co_return *va;
}

sim::Task<Result<mem::VirtAddr>> Process::mmap_anon(std::uint64_t len) {
  const Time t0 = engine().now();
  const std::uint64_t pages = mem::page_ceil(len, mem::kPage4K) / mem::kPage4K;
  const Dur per_page = on_lwk() ? cfg().lwk_mmap_per_page : cfg().linux_mmap_per_page;
  co_await engine().delay(cfg().mmap_base_cost + static_cast<Dur>(pages) * per_page);
  auto va = as_->mmap_anonymous(len, mem::kProtRead | mem::kProtWrite);
  account("mmap", t0);
  if (!va.ok()) co_return va.error();
  co_return *va;
}

sim::Task<Result<long>> Process::munmap(mem::VirtAddr addr, std::uint64_t len) {
  const Time t0 = engine().now();
  const std::uint64_t pages = mem::page_ceil(len, mem::kPage4K) / mem::kPage4K;
  const Dur per_page = on_lwk() ? cfg().lwk_munmap_per_page : cfg().linux_munmap_per_page;
  co_await engine().delay(cfg().mmap_base_cost / 2 + static_cast<Dur>(pages) * per_page);
  Status s = as_->munmap(addr, len);
  account("munmap", t0);
  if (!s.ok()) co_return s.error();
  co_return 0L;
}

sim::Task<Result<long>> Process::close_fd(int fd) {
  const Time t0 = engine().now();
  OpenFile* f = file(fd);
  if (f == nullptr) {
    account("close", t0);
    co_return Errno::ebadf;
  }
  Result<long> r = Errno::enosys;
  if (!on_lwk()) {
    co_await engine().delay(cfg().syscall_entry);
    r = co_await f->dev->close(*f);
  } else {
    r = co_await mck_->ihk().offload(
        [&]() -> sim::Task<Result<long>> { co_return co_await f->dev->close(*f); },
        ikc::Priority::control, ctxt_, job_);
  }
  files_.erase(fd);
  account("close", t0);
  co_return r;
}

sim::Task<> Process::nanosleep(Dur d) {
  const Time t0 = engine().now();
  co_await engine().delay((on_lwk() ? cfg().lwk_syscall_entry : cfg().syscall_entry) + d);
  account("nanosleep", t0);
}

sim::Task<> Process::compute(Dur work) { co_await kernel().compute(work, rng_); }

}  // namespace pd::os
