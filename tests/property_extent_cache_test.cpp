// Randomized cache ≡ fresh-walk equivalence harness for the extent/TID
// cache (the PR's load-bearing correctness proof).
//
// Correctness here is subtle: a stale cached extent means the driver DMAs
// from frames that went back to the allocator. So the harness drives
// seeded randomized sequences of mmap_anonymous / munmap / lookup against
// an AddressSpace under adversarial map churn, and asserts after EVERY
// lookup that the cache's answer is byte-identical to a fresh
// `physical_extents` page-table walk — same extents, same error — across
// backing policies, eviction policies, cache capacities (including the
// degenerate 0), and unmap-log capacities (including the 0 = whole-space
// generation fallback).
//
// Determinism: the seed is fixed (kDefaultSeed) so CI is reproducible, and
// overridable via PD_PROPERTY_SEED for exploratory fuzzing. On divergence
// the harness prints the seed plus the trailing operation trace — a
// copy-pastable reproducer.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/mem/address_space.hpp"
#include "src/mem/extent_cache.hpp"

namespace pd::mem {
namespace {

constexpr std::uint64_t kDefaultSeed = 20260805;
constexpr int kOpsPerRun = 12'000;  // acceptance floor is 10k per seed

std::uint64_t harness_seed() {
  if (const char* env = std::getenv("PD_PROPERTY_SEED"); env != nullptr && *env != '\0')
    return std::strtoull(env, nullptr, 0);
  return kDefaultSeed;
}

struct CacheConfig {
  const char* name;
  std::size_t capacity;
  ExtentCache::EvictionPolicy policy;
  std::size_t log_capacity;
};

constexpr CacheConfig kConfigs[] = {
    {"prod/size-aware/log32", 64, ExtentCache::EvictionPolicy::size_aware,
     AddressSpace::kDefaultUnmapLogCapacity},
    {"prod/lru/log32", 64, ExtentCache::EvictionPolicy::lru,
     AddressSpace::kDefaultUnmapLogCapacity},
    {"tiny/size-aware/log4", 4, ExtentCache::EvictionPolicy::size_aware, 4},
    {"pr1/lru/log0", 4, ExtentCache::EvictionPolicy::lru, 0},
    {"passthrough/cap0", 0, ExtentCache::EvictionPolicy::size_aware,
     AddressSpace::kDefaultUnmapLogCapacity},
    {"single-slot/log2", 1, ExtentCache::EvictionPolicy::size_aware, 2},
};

struct Region {
  VirtAddr va = 0;
  std::uint64_t len = 0;
};

/// One randomized run: churn mappings, compare every cached lookup to a
/// fresh page-table walk. Records a printable trace for the reproducer.
class EquivalenceHarness {
 public:
  EquivalenceHarness(std::uint64_t seed, BackingPolicy backing, const CacheConfig& cfg)
      : seed_(seed),
        backing_(backing),
        cfg_(cfg),
        rng_(seed),
        phys_(PhysMap::knl(128_MiB, 256_MiB, 2)),
        as_(phys_, backing, MemKind::mcdram, 0x30'0000'0000ull, seed ^ 0xF00D),
        cache_(cfg.capacity, cfg.policy) {
    as_.set_unmap_log_capacity(cfg.log_capacity);
  }

  void run(int ops) {
    for (int step = 0; step < ops && !failed_; ++step) {
      const std::uint64_t dice = rng_.next_below(100);
      if (dice < 25) {
        do_mmap();
      } else if (dice < 45) {
        do_munmap();
      } else {
        do_lookup();
      }
    }
    if (failed_) return;
    // Closing sweep: every live region's whole-range key one more time.
    for (const Region& r : live_) {
      check_lookup(r.va, r.len, 10240);
      if (failed_) return;
    }
    sanity_check_stats();
  }

  bool failed() const { return failed_; }

 private:
  void note(std::string line) { trace_.push_back(std::move(line)); }

  static std::string fmt(const char* pattern, std::uint64_t a, std::uint64_t b) {
    char buf[160];
    std::snprintf(buf, sizeof buf, pattern, static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
    return buf;
  }

  void fail(const std::string& what) {
    failed_ = true;
    std::string tail;
    const std::size_t keep = 60;
    const std::size_t first = trace_.size() > keep ? trace_.size() - keep : 0;
    for (std::size_t i = first; i < trace_.size(); ++i)
      tail += "  op#" + std::to_string(i) + ": " + trace_[i] + "\n";
    ADD_FAILURE() << "cache/fresh-walk divergence: " << what
                  << "\n  reproduce with PD_PROPERTY_SEED=" << seed_
                  << " (config=" << cfg_.name
                  << ", backing=" << (backing_ == BackingPolicy::linux_4k ? "linux_4k"
                                                                          : "lwk_contig")
                  << ")\n  trailing operation trace:\n"
                  << tail;
  }

  void do_mmap() {
    if (live_.size() >= 48) {
      do_munmap();  // keep the working set (and phys usage) bounded
      return;
    }
    // Mostly small/medium buffers; occasionally a 2 MiB+ window so the
    // large-page path and long extents participate.
    std::uint64_t len = (1 + rng_.next_below(64)) * kPage4K;
    if (rng_.next_below(10) == 0) len = 2_MiB + rng_.next_below(4) * kPage4K;
    auto va = as_.mmap_anonymous(len, kProtRead | kProtWrite);
    if (!va.ok()) {
      note(fmt("mmap(len=%#llx) failed, skipped (err=%llu)", len,
               static_cast<std::uint64_t>(va.error())));
      return;
    }
    note(fmt("mmap(len=%#llx) -> va=%#llx", len, *va));
    live_.push_back(Region{*va, len});
  }

  void do_munmap() {
    if (live_.empty()) return;
    const std::size_t pick = rng_.next_below(live_.size());
    const Region r = live_[pick];
    note(fmt("munmap(va=%#llx, len=%#llx)", r.va, r.len));
    ASSERT_TRUE(as_.munmap(r.va, r.len).ok());
    live_[pick] = live_.back();
    live_.pop_back();
    dead_.push_back(r);
    if (dead_.size() > 32) dead_.erase(dead_.begin());
  }

  void do_lookup() {
    const std::uint64_t max_extent = rng_.next_below(2) == 0 ? 10240 : 2_MiB;
    const std::uint64_t dice = rng_.next_below(100);
    if (dice < 60 && !live_.empty()) {
      // Whole-range key of a live region: the repeated-send pattern that
      // should hit; re-looked-up across munmaps of other regions.
      const Region& r = live_[rng_.next_below(live_.size())];
      check_lookup(r.va, r.len, max_extent);
    } else if (dice < 80 && !live_.empty()) {
      // Random (unaligned) sub-range of a live region.
      const Region& r = live_[rng_.next_below(live_.size())];
      const std::uint64_t off = rng_.next_below(r.len);
      const std::uint64_t len = 1 + rng_.next_below(r.len - off);
      check_lookup(r.va + off, len, max_extent);
    } else if (dice < 92 && !dead_.empty()) {
      // A previously unmapped range: both sides must fault identically —
      // and must keep faulting even if the key was cached while alive.
      const Region& r = dead_[rng_.next_below(dead_.size())];
      check_lookup(r.va, r.len, max_extent);
    } else {
      // Wild address, never mapped.
      check_lookup(0x6666'0000ull + rng_.next_below(1_GiB), 1 + rng_.next_below(64_KiB),
                   max_extent);
    }
  }

  void check_lookup(VirtAddr va, std::uint64_t len, std::uint64_t max_extent) {
    ++lookups_;
    ExtentCache::Outcome outcome = ExtentCache::Outcome::miss;
    auto cached = cache_.lookup(as_, va, len, max_extent, &outcome);
    auto fresh = as_.physical_extents(va, len, max_extent);
    note(fmt("lookup(va=%#llx, len=%#llx)", va, len) +
         (max_extent == 10240 ? " max=10240" : " max=2M") +
         (cached.ok() ? " -> ok" : " -> error") + outcome_tag(cached.ok(), outcome));
    if (cached.ok() != fresh.ok()) {
      fail(fmt("lookup(va=%#llx, len=%#llx): cache says ", va, len) +
           (cached.ok() ? "ok" : "error") + ", fresh walk says " +
           (fresh.ok() ? "ok" : "error"));
      return;
    }
    if (!cached.ok()) {
      if (cached.error() != fresh.error())
        fail(fmt("lookup(va=%#llx, len=%#llx): cache and fresh walk fault differently", va, len));
      return;
    }
    if (cached->size() != fresh->size()) {
      fail(fmt("lookup(va=%#llx, len=%#llx): extent count differs: cache=", va, len) +
           std::to_string(cached->size()) + " fresh=" + std::to_string(fresh->size()));
      return;
    }
    for (std::size_t i = 0; i < fresh->size(); ++i) {
      if ((*cached)[i].pa != (*fresh)[i].pa || (*cached)[i].len != (*fresh)[i].len) {
        fail(fmt("lookup(va=%#llx, len=%#llx): extent[", va, len) + std::to_string(i) +
             fmt("] differs: cache={pa=%#llx,len=%#llx}", (*cached)[i].pa,
                 (*cached)[i].len) +
             fmt(" fresh={pa=%#llx,len=%#llx}", (*fresh)[i].pa, (*fresh)[i].len));
        return;
      }
    }
  }

  static std::string outcome_tag(bool ok, ExtentCache::Outcome o) {
    if (!ok) return "";
    switch (o) {
      case ExtentCache::Outcome::hit: return " [hit]";
      case ExtentCache::Outcome::miss: return " [miss]";
      case ExtentCache::Outcome::range_invalidated: return " [range_invalidated]";
      case ExtentCache::Outcome::generation_overflow: return " [generation_overflow]";
      case ExtentCache::Outcome::evicted_small: return " [evicted_small]";
    }
    return "";
  }

  void sanity_check_stats() {
    const ExtentCache::Stats& s = cache_.stats();
    // Every successful lookup lands in exactly one outcome bucket; failed
    // walks land in none — so the buckets never exceed the lookup count.
    EXPECT_LE(s.hits + s.misses + s.invalidations(), lookups_)
        << "outcome accounting leaked (config=" << cfg_.name << ")";
    EXPECT_LE(cache_.entries(), cfg_.capacity == 0 ? 0 : cfg_.capacity);
    if (cfg_.capacity == 0) {
      EXPECT_EQ(s.hits, 0u) << "pass-through cache must never claim a hit";
      EXPECT_EQ(s.evictions, 0u);
    }
  }

  std::uint64_t seed_;
  BackingPolicy backing_;
  CacheConfig cfg_;
  Rng rng_;
  PhysMap phys_;
  AddressSpace as_;
  ExtentCache cache_;
  std::vector<Region> live_;
  std::vector<Region> dead_;
  std::vector<std::string> trace_;
  std::uint64_t lookups_ = 0;
  bool failed_ = false;
};

class ExtentCacheEquivalence : public testing::TestWithParam<BackingPolicy> {};

TEST_P(ExtentCacheEquivalence, CacheMatchesFreshWalkUnderMapChurn) {
  const std::uint64_t seed = harness_seed();
  std::printf("extent-cache equivalence: PD_PROPERTY_SEED=%llu (%d ops x %zu configs)\n",
              static_cast<unsigned long long>(seed), kOpsPerRun, std::size(kConfigs));
  std::uint64_t sm = seed;
  for (const CacheConfig& cfg : kConfigs) {
    // Decorrelated per-config stream; the printed seed still reproduces all.
    EquivalenceHarness h(splitmix64(sm), GetParam(), cfg);
    h.run(kOpsPerRun);
    if (h.failed()) return;  // the reproducer has been printed; stop early
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, ExtentCacheEquivalence,
                         testing::Values(BackingPolicy::linux_4k, BackingPolicy::lwk_contig),
                         [](const testing::TestParamInfo<BackingPolicy>& info) {
                           return info.param == BackingPolicy::linux_4k ? "linux4k"
                                                                        : "lwkContig";
                         });

// A second fixed seed keeps coverage breadth even when PD_PROPERTY_SEED
// pins the primary one during a bisection.
TEST(ExtentCacheEquivalence, SecondarySeedSweep) {
  for (const std::uint64_t seed : {std::uint64_t{0xC0FFEEull}, std::uint64_t{42}}) {
    std::uint64_t sm = seed;
    for (const CacheConfig& cfg : {kConfigs[0], kConfigs[3]}) {
      EquivalenceHarness h(splitmix64(sm), BackingPolicy::lwk_contig, cfg);
      h.run(kOpsPerRun / 2);
      if (h.failed()) return;
    }
  }
}

// --- pin/unpin: in-flight rendezvous windows are never eviction victims ---

class ExtentCachePinning : public testing::Test {
 protected:
  static constexpr std::uint64_t kMaxExtent = 10240;

  PhysMap phys{PhysMap::knl(128_MiB, 256_MiB, 2)};
  AddressSpace as{phys, BackingPolicy::lwk_contig, MemKind::mcdram, 0x30'0000'0000ull, 0x9142};

  VirtAddr map(std::uint64_t len) {
    auto va = as.mmap_anonymous(len, kProtRead | kProtWrite);
    EXPECT_TRUE(va.ok());
    return va.ok() ? *va : 0;
  }

  ExtentCache::Outcome look(ExtentCache& cache, VirtAddr va, std::uint64_t len) {
    ExtentCache::Outcome out{};
    auto spans = cache.lookup(as, va, len, kMaxExtent, &out);
    EXPECT_TRUE(spans.ok());
    return out;
  }
};

// Under size-aware scoring a small zero-hit entry is the canonical victim.
// Pinning it must force the burst to evict its own kind instead, and the
// window must still be a hit when the send resumes.
TEST_F(ExtentCachePinning, PinnedEntrySurvivesEvictionPressure) {
  ExtentCache cache(2, ExtentCache::EvictionPolicy::size_aware);
  const VirtAddr window = map(4_KiB);  // small: lowest score, natural victim
  ASSERT_EQ(look(cache, window, 4_KiB), ExtentCache::Outcome::miss);
  ASSERT_TRUE(cache.pin(window, 4_KiB, kMaxExtent));
  ASSERT_EQ(cache.pinned_entries(), 1u);

  for (int i = 0; i < 16; ++i) {
    const VirtAddr burst = map(64_KiB);
    look(cache, burst, 64_KiB);  // each insertion must pick the unpinned slot
    ASSERT_LE(cache.entries(), cache.capacity());
  }
  EXPECT_EQ(look(cache, window, 4_KiB), ExtentCache::Outcome::hit)
      << "pinned window was evicted mid-flight";

  // Control: the identical burst against an unpinned clone evicts the
  // window immediately — the pin is what kept it alive above.
  ExtentCache control(2, ExtentCache::EvictionPolicy::size_aware);
  ASSERT_EQ(look(control, window, 4_KiB), ExtentCache::Outcome::miss);
  for (int i = 0; i < 16; ++i) {
    const VirtAddr burst = map(64_KiB);
    look(control, burst, 64_KiB);
  }
  // (The re-walk evicts a burst slot, so the outcome is the evicting miss.)
  EXPECT_NE(look(control, window, 4_KiB), ExtentCache::Outcome::hit);
}

// With every entry pinned a cold miss may not kill a window: the cache
// overflows capacity for the duration and unpin() shrinks it back.
TEST_F(ExtentCachePinning, AllPinnedOverflowsThenShrinksOnUnpin) {
  ExtentCache cache(1, ExtentCache::EvictionPolicy::size_aware);
  const VirtAddr window = map(64_KiB);
  look(cache, window, 64_KiB);
  ASSERT_TRUE(cache.pin(window, 64_KiB, kMaxExtent));

  const VirtAddr cold = map(8_KiB);
  ASSERT_EQ(look(cache, cold, 8_KiB), ExtentCache::Outcome::miss);
  EXPECT_EQ(cache.entries(), 2u) << "cold miss should overflow, not evict the pin";
  EXPECT_EQ(look(cache, window, 64_KiB), ExtentCache::Outcome::hit);

  cache.unpin(window, 64_KiB, kMaxExtent);
  EXPECT_EQ(cache.pinned_entries(), 0u);
  EXPECT_EQ(cache.entries(), cache.capacity()) << "unpin should shrink the overflow";
  // The high-score window is what the shrink retains.
  EXPECT_EQ(look(cache, window, 64_KiB), ExtentCache::Outcome::hit);
}

TEST_F(ExtentCachePinning, PinsNestAndUnknownKeysAreRejected) {
  ExtentCache cache(1, ExtentCache::EvictionPolicy::size_aware);
  const VirtAddr window = map(16_KiB);
  // Nothing cached yet: nothing to protect.
  EXPECT_FALSE(cache.pin(window, 16_KiB, kMaxExtent));
  cache.unpin(window, 16_KiB, kMaxExtent);  // no-op, must not crash

  look(cache, window, 16_KiB);
  ASSERT_TRUE(cache.pin(window, 16_KiB, kMaxExtent));
  ASSERT_TRUE(cache.pin(window, 16_KiB, kMaxExtent));  // two overlapping sends
  cache.unpin(window, 16_KiB, kMaxExtent);
  EXPECT_EQ(cache.pinned_entries(), 1u) << "pins must nest";
  for (int i = 0; i < 8; ++i) look(cache, map(64_KiB), 64_KiB);
  EXPECT_EQ(look(cache, window, 16_KiB), ExtentCache::Outcome::hit);
  cache.unpin(window, 16_KiB, kMaxExtent);
  EXPECT_EQ(cache.pinned_entries(), 0u);
}

// A pass-through cache (capacity 0) retains nothing, so there is nothing
// to pin — the driver's pin call degrades to a no-op and the fast path
// still works.
TEST_F(ExtentCachePinning, PassThroughCacheHasNothingToPin) {
  ExtentCache cache(0, ExtentCache::EvictionPolicy::size_aware);
  const VirtAddr window = map(16_KiB);
  look(cache, window, 16_KiB);
  EXPECT_FALSE(cache.pin(window, 16_KiB, kMaxExtent));
  EXPECT_EQ(cache.pinned_entries(), 0u);
}

}  // namespace
}  // namespace pd::mem
