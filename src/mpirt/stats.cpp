#include "src/mpirt/stats.hpp"

#include <algorithm>

namespace pd::mpirt {

void MpiStatsTable::add_rank(const MpiStats& stats) {
  for (const auto& [name, entry] : stats.calls()) {
    auto& m = merged_[name];
    m.total += entry.total;
    m.count += entry.count;
    total_mpi_ += entry.total;
  }
  for (const auto& [key, n] : stats.algos()) algo_counts_[key] += n;
  total_runtime_ += stats.runtime();
}

std::vector<MpiStatsRow> MpiStatsTable::rows(std::size_t top) const {
  std::vector<MpiStatsRow> out;
  for (const auto& [name, entry] : merged_) {
    MpiStatsRow row;
    row.call = name;
    row.time_ms = to_ms(entry.total);
    row.count = entry.count;
    row.pct_mpi = total_mpi_ > 0 ? 100.0 * static_cast<double>(entry.total) /
                                       static_cast<double>(total_mpi_)
                                 : 0.0;
    row.pct_runtime = total_runtime_ > 0 ? 100.0 * static_cast<double>(entry.total) /
                                               static_cast<double>(total_runtime_)
                                         : 0.0;
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const MpiStatsRow& a, const MpiStatsRow& b) { return a.time_ms > b.time_ms; });
  if (top != 0 && out.size() > top) out.resize(top);
  return out;
}

const MpiStatsRow* MpiStatsTable::row(const std::string& call) const {
  cache_ = rows(0);
  for (const auto& r : cache_)
    if (r.call == call) return &r;
  return nullptr;
}

}  // namespace pd::mpirt
