// IKC ring-transport unit coverage: batching, priority classes, the
// timeout → retry → degrade ladder, stall recovery via probes, per-channel
// FIFO order, ring-full handling, and depth-histogram accounting.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/ikc/transport.hpp"
#include "src/os/kernel.hpp"

namespace pd::ikc {
namespace {

/// One transport wired like an Ihk would: the LinuxKernel supplies the
/// service-CPU pool and the profiler the counters land in.
struct Harness {
  explicit Harness(os::Config c, mem::PhysMap* phys = nullptr) : cfg(std::move(c)) {
    linux_kernel = std::make_unique<os::LinuxKernel>(engine, cfg);
    transport = std::make_unique<IkcTransport>(engine, cfg, linux_kernel->service_cpus(),
                                               linux_kernel->profiler(), queueing,
                                               linux_kernel->spinlock_abi(), phys);
  }

  std::uint64_t counter(const std::string& name) const {
    return linux_kernel->profiler().counter(name);
  }

  /// Submit one offload whose service appends `tag` to `order` and returns
  /// it; completions land in `results` keyed by submit index.
  void submit(long tag, Priority prio, int channel, std::vector<long>& order,
              std::vector<long>& results) {
    sim::spawn(engine, [](Harness& h, long t, Priority p, int ch, std::vector<long>& ord,
                          std::vector<long>& res) -> sim::Task<> {
      auto r = co_await h.transport->offload(
          [&h, t, &ord]() -> sim::Task<Result<long>> {
            co_await h.engine.delay(from_us(2));
            ord.push_back(t);
            co_return t;
          },
          p, ch);
      EXPECT_TRUE(r.ok());
      res.push_back(r.ok() ? *r : -1L);
    }(*this, tag, prio, channel, order, results));
  }

  sim::Engine engine;
  os::Config cfg;
  Samples queueing;
  std::unique_ptr<os::LinuxKernel> linux_kernel;
  std::unique_ptr<IkcTransport> transport;
};

os::Config ring_cfg() {
  os::Config cfg;
  cfg.ikc_mode = os::IkcMode::ring;
  return cfg;
}

TEST(IkcTransport, RingOffloadCompletesWithResult) {
  Harness h(ring_cfg());
  std::vector<long> order, results;
  h.submit(42, Priority::control, 0, order, results);
  h.engine.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 42);
  EXPECT_EQ(h.counter("ikc.ring.enqueue"), 1u);
  EXPECT_EQ(h.counter("ikc.ring.timeout"), 0u);
  EXPECT_EQ(h.counter("ikc.ring.degraded"), 0u);
  EXPECT_EQ(h.queueing.count(), 1u);
}

TEST(IkcTransport, BatchDrainAmortizesWakeups) {
  auto cfg = ring_cfg();
  cfg.linux_service_cpus = 1;  // one loop owns every channel
  cfg.ikc_batch = 16;
  Harness h(cfg);
  std::vector<long> order, results;
  constexpr int kOps = 16;
  for (int i = 0; i < kOps; ++i) h.submit(i, Priority::bulk, i, order, results);
  h.engine.run();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kOps));
  EXPECT_EQ(h.counter("ikc.ring.enqueue"), static_cast<std::uint64_t>(kOps));
  // All submissions land within one IKC one-way, so the loop must have
  // drained them in far fewer batches than requests — that is the
  // amortization the ring transport exists for.
  EXPECT_LT(h.counter("ikc.ring.batch_drain"), static_cast<std::uint64_t>(kOps) / 2);
  EXPECT_EQ(h.transport->loop_served(0), static_cast<std::uint64_t>(kOps));
}

TEST(IkcTransport, ControlClassServedBeforeBulk) {
  auto cfg = ring_cfg();
  cfg.linux_service_cpus = 1;
  cfg.ikc_channels = 1;  // everything on one channel: pure priority test
  cfg.ikc_batch = 16;
  Harness h(cfg);
  std::vector<long> order, results;
  for (int i = 0; i < 6; ++i) h.submit(100 + i, Priority::bulk, 0, order, results);
  h.submit(7, Priority::control, 0, order, results);  // submitted last
  h.engine.run();
  ASSERT_EQ(order.size(), 7u);
  EXPECT_EQ(order.front(), 7) << "control must jump the bulk queue";
}

TEST(IkcTransport, FifoOrderPreservedPerChannel) {
  auto cfg = ring_cfg();
  cfg.linux_service_cpus = 1;
  cfg.ikc_channels = 1;
  Harness h(cfg);
  std::vector<long> order, results;
  constexpr int kOps = 12;
  for (int i = 0; i < kOps; ++i) h.submit(i, Priority::bulk, 0, order, results);
  h.engine.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kOps));
  for (int i = 0; i < kOps; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i) << "same-class FIFO broken at " << i;
}

TEST(IkcTransport, TimeoutRetriesOnAnotherLoopsRing) {
  auto cfg = ring_cfg();
  cfg.linux_service_cpus = 2;  // loops 0 and 1; channel k belongs to loop k%2
  cfg.ikc_deadline = from_us(50);
  Harness h(cfg);
  h.transport->inject_stall(0, true);
  std::vector<long> order, results;
  h.submit(1, Priority::control, 0, order, results);  // channel 0 → stalled loop 0
  h.engine.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 1);
  EXPECT_GE(h.counter("ikc.ring.timeout"), 1u);
  EXPECT_GE(h.counter("ikc.ring.retry"), 1u);
  EXPECT_EQ(h.counter("ikc.ring.degraded"), 0u) << "healthy loop 1 must absorb the retry";
  EXPECT_EQ(h.transport->loop_served(1), 1u);
  EXPECT_GE(h.counter("ikc.ring.stale_skip"), 0u);
}

TEST(IkcTransport, AllLoopsStalledDegradesToDirectPathWithoutHanging) {
  auto cfg = ring_cfg();
  cfg.ikc_deadline = from_us(50);
  cfg.ikc_retry_backoff = from_us(1);
  Harness h(cfg);
  for (int l = 0; l < h.transport->num_loops(); ++l) h.transport->inject_stall(l, true);
  std::vector<long> order, results;
  constexpr int kOps = 8;
  for (int i = 0; i < kOps; ++i) h.submit(i, Priority::bulk, i, order, results);
  h.engine.run();  // must terminate: degradation, not a hang
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kOps));
  EXPECT_GE(h.counter("ikc.ring.degraded"), 1u);
  for (int l = 0; l < h.transport->num_loops(); ++l)
    EXPECT_EQ(h.transport->loop_served(l), 0u);
}

TEST(IkcTransport, SuspectLoopRecoversThroughProbe) {
  auto cfg = ring_cfg();
  cfg.linux_service_cpus = 2;
  cfg.ikc_deadline = from_us(50);
  cfg.ikc_stall_threshold = 2;
  cfg.ikc_probe_interval = 2;  // every 2nd submit probes a suspect loop
  Harness h(cfg);
  h.transport->inject_stall(0, true);

  std::vector<long> order, results;
  for (int i = 0; i < 4; ++i) h.submit(i, Priority::control, 0, order, results);
  h.engine.run();
  ASSERT_TRUE(h.transport->loop_suspect(0)) << "timeouts must mark the stalled loop";

  h.transport->inject_stall(0, false);
  // Redirected submissions alone would never visit loop 0 again; the
  // periodic probe must land there, get served, and clear the suspicion.
  for (int i = 0; i < 8; ++i) h.submit(100 + i, Priority::control, 0, order, results);
  h.engine.run();
  EXPECT_GT(h.transport->loop_served(0), 0u) << "probe never reached the recovered loop";
  EXPECT_FALSE(h.transport->loop_suspect(0));
  EXPECT_GE(h.counter("ikc.ring.probe"), 1u);
  EXPECT_EQ(results.size(), 12u);
}

TEST(IkcTransport, FairDrainNeverClaimsHeadsThatSettledMidCollect) {
  // Regression: collect_batch_fair's scan sees a queued head, but the
  // touch's awaits (lock hand-off, remote-drain surcharge) advance
  // simulated time before the pop. A head whose ring-residency deadline
  // fires inside that window is already being retried by its submitter on
  // another ring — claiming it anyway executes the service twice. Widen
  // the window (fat lock cost) and tighten the deadline so backlogged
  // heads routinely settle mid-collect, then assert no service ran twice.
  auto cfg = ring_cfg();
  cfg.linux_service_cpus = 2;
  cfg.ikc_channels = 4;
  cfg.ikc_fair_drain = true;
  cfg.ikc_lock_cost = from_us(5);  // widen the scan → pop window
  cfg.ikc_deadline = from_us(40);  // heads settle while batches collect
  cfg.ikc_retry_backoff = from_us(1);
  Harness h(cfg);
  std::vector<long> order, results;
  constexpr int kOps = 64;
  for (int i = 0; i < kOps; ++i)
    h.submit(i, i % 4 == 0 ? Priority::control : Priority::bulk, i % 4, order, results);
  h.engine.run();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kOps));
  // The scenario must actually flood heads into the settle window ...
  EXPECT_GT(h.counter("ikc.ring.timeout"), 0u);
  EXPECT_GT(h.counter("ikc.ring.stale_skip"), 0u);
  // ... and every service must run at most once: a timed-out attempt is
  // the submitter's to retry, never the drain's to claim.
  std::map<long, int> runs;
  for (long tag : order) ++runs[tag];
  for (const auto& [tag, n] : runs)
    EXPECT_LE(n, 1) << "service for op " << tag << " executed " << n << " times";
}

TEST(IkcTransport, RingFullRetriesAndCompletesEverything) {
  auto cfg = ring_cfg();
  cfg.ikc_channels = 1;
  cfg.ikc_ring_depth = 2;
  cfg.ikc_deadline = from_us(50);
  cfg.ikc_retry_backoff = from_us(1);
  Harness h(cfg);
  h.transport->inject_stall(0, true);  // nothing drains: the ring must fill
  std::vector<long> order, results;
  constexpr int kOps = 6;
  for (int i = 0; i < kOps; ++i) h.submit(i, Priority::bulk, 0, order, results);
  h.engine.run();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kOps));
  EXPECT_GE(h.counter("ikc.ring.full"), 1u);
  EXPECT_GE(h.counter("ikc.ring.degraded"), 1u);
}

TEST(IkcTransport, DepthHistogramAccountsEveryEnqueue) {
  auto cfg = ring_cfg();
  cfg.ikc_channels = 2;
  Harness h(cfg);
  std::vector<long> order, results;
  constexpr int kOps = 10;
  for (int i = 0; i < kOps; ++i) h.submit(i, Priority::bulk, i % 2, order, results);
  h.engine.run();
  std::uint64_t histogram_total = 0;
  for (int ch = 0; ch < h.transport->num_channels(); ++ch) {
    for (auto v : h.transport->depth_histogram(ch)) histogram_total += v;
    EXPECT_EQ(h.transport->channel_depth(ch), 0u) << "ring must drain by idle";
  }
  EXPECT_EQ(histogram_total, h.counter("ikc.ring.enqueue"));
  EXPECT_EQ(histogram_total, h.linux_kernel->profiler().sum_counters("ikc.ring.depth."));
}

TEST(IkcTransport, DirectModeMatchesLegacyTiming) {
  // ikc_mode = direct must reproduce the legacy closed-form single-offload
  // cost exactly — the guarantee that keeps every calibrated paper shape
  // intact while the ring transport exists behind the same facade.
  os::Config cfg;  // defaults: direct
  Harness h(cfg);
  Time finished = -1;
  sim::spawn(h.engine, [](Harness& hh, Time& out) -> sim::Task<> {
    auto r = co_await hh.transport->offload(
        []() -> sim::Task<Result<long>> { co_return 5L; }, Priority::control, 0);
    EXPECT_TRUE(r.ok());
    out = hh.engine.now();
  }(h, finished));
  h.engine.run();
  const Dur expected = 2 * cfg.offload_oneway + cfg.proxy_wakeup_hot + cfg.offload_dispatch +
                       cfg.proxy_min_service;
  EXPECT_EQ(finished, expected);
  EXPECT_EQ(h.counter("ikc.ring.enqueue"), 0u) << "direct mode must not touch the rings";
}

TEST(IkcTransport, DirectCountersPinnedInBothModes) {
  // Regression pin on the ikc.direct.* wakeup accounting the benches
  // compare transports with: direct mode pays exactly one proxy wakeup and
  // one reply wakeup per offload; healthy ring mode pays zero of either;
  // and a fully degraded ring run pays them only for the offloads that
  // actually fell back to the direct path.
  constexpr int kOps = 8;
  {
    os::Config cfg;  // defaults: direct
    Harness h(cfg);
    std::vector<long> order, results;
    for (int i = 0; i < kOps; ++i) h.submit(i, Priority::bulk, i, order, results);
    h.engine.run();
    ASSERT_EQ(results.size(), static_cast<std::size_t>(kOps));
    EXPECT_EQ(h.counter("ikc.direct.proxy_wakeup"), static_cast<std::uint64_t>(kOps));
    EXPECT_EQ(h.counter("ikc.direct.reply_wakeup"), static_cast<std::uint64_t>(kOps));
    EXPECT_EQ(h.counter("ikc.ring.enqueue"), 0u);
    EXPECT_EQ(h.counter("ikc.ring.doorbell"), 0u);
  }
  {
    Harness h(ring_cfg());
    std::vector<long> order, results;
    for (int i = 0; i < kOps; ++i) h.submit(i, Priority::bulk, i, order, results);
    h.engine.run();
    ASSERT_EQ(results.size(), static_cast<std::size_t>(kOps));
    EXPECT_EQ(h.counter("ikc.direct.proxy_wakeup"), 0u)
        << "healthy ring traffic must never touch the proxy path";
    EXPECT_EQ(h.counter("ikc.direct.reply_wakeup"), 0u);
    EXPECT_EQ(h.counter("ikc.ring.enqueue"), static_cast<std::uint64_t>(kOps));
  }
  {
    auto cfg = ring_cfg();
    cfg.ikc_deadline = from_us(50);
    cfg.ikc_retry_backoff = from_us(1);
    Harness h(cfg);
    for (int l = 0; l < h.transport->num_loops(); ++l) h.transport->inject_stall(l, true);
    std::vector<long> order, results;
    for (int i = 0; i < kOps; ++i) h.submit(i, Priority::bulk, i, order, results);
    h.engine.run();
    ASSERT_EQ(results.size(), static_cast<std::size_t>(kOps));
    const auto degraded = h.counter("ikc.ring.degraded");
    EXPECT_GE(degraded, 1u);
    EXPECT_EQ(h.counter("ikc.direct.proxy_wakeup"), degraded)
        << "each degraded offload pays exactly one proxy wakeup";
    EXPECT_EQ(h.counter("ikc.direct.reply_wakeup"), degraded);
  }
}

TEST(IkcReply, PollingConsumersNeedNoCompletionWakeups) {
  // Services finish well inside the poll budget, so every completion must
  // be found by the polling LWK core — zero reply wakeups on the whole run.
  auto cfg = ring_cfg();
  Harness h(cfg);
  std::vector<long> order, results;
  constexpr int kOps = 12;
  for (int i = 0; i < kOps; ++i) h.submit(i, Priority::bulk, i, order, results);
  h.engine.run();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kOps));
  EXPECT_EQ(h.counter("ikc.reply.poll_hit"), static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(h.counter("ikc.reply.wakeup"), 0u);
  EXPECT_EQ(h.counter("ikc.reply.park"), 0u);
  for (int ch = 0; ch < h.transport->num_channels(); ++ch)
    EXPECT_EQ(h.transport->reply_ring_depth(ch), 0u) << "notifications must be reclaimed";
}

TEST(IkcReply, LatchModePaysOneWakeupPerRequest) {
  auto cfg = ring_cfg();
  cfg.ikc_reply_mode = os::ReplyMode::latch;
  Harness h(cfg);
  std::vector<long> order, results;
  constexpr int kOps = 12;
  for (int i = 0; i < kOps; ++i) h.submit(i, Priority::bulk, i, order, results);
  h.engine.run();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kOps));
  EXPECT_EQ(h.counter("ikc.reply.wakeup"), static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(h.counter("ikc.reply.post"), 0u) << "latch mode must not touch reply rings";
}

TEST(IkcReply, ParkedConsumerWokenByOneDoorbellPerBatch) {
  // Exhaust the poll budget before the service finishes: the consumers
  // must park, and the whole batch of completions must come back on a
  // single completion doorbell (one wakeup, many requests).
  auto cfg = ring_cfg();
  cfg.linux_service_cpus = 1;
  cfg.ikc_channels = 1;
  cfg.ikc_batch = 16;
  cfg.ikc_reply_poll_budget = from_us(2);
  Harness h(cfg);
  std::vector<long> results;
  constexpr int kOps = 6;
  for (int i = 0; i < kOps; ++i) {
    sim::spawn(h.engine, [](Harness& hh, long t, std::vector<long>& res) -> sim::Task<> {
      auto r = co_await hh.transport->offload(
          [&hh, t]() -> sim::Task<Result<long>> {
            co_await hh.engine.delay(from_us(40));  // far past the poll budget
            co_return t;
          },
          Priority::bulk, 0);
      EXPECT_TRUE(r.ok());
      res.push_back(r.ok() ? *r : -1L);
    }(h, i, results));
  }
  h.engine.run();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kOps));
  EXPECT_GE(h.counter("ikc.reply.park"), static_cast<std::uint64_t>(kOps));
  EXPECT_GE(h.counter("ikc.reply.wakeup"), 1u);
  EXPECT_LT(h.counter("ikc.reply.wakeup"), static_cast<std::uint64_t>(kOps))
      << "a doorbell per parked request would be the latch shape again";
}

TEST(IkcReply, LostDoorbellRecoveredBySelfDrain) {
  auto cfg = ring_cfg();
  cfg.linux_service_cpus = 1;
  cfg.ikc_channels = 1;
  cfg.ikc_reply_poll_budget = from_us(2);
  cfg.ikc_reply_deadline = from_us(200);
  Harness h(cfg);
  h.transport->inject_reply_doorbell_loss(0, true);
  std::vector<long> results;
  sim::spawn(h.engine, [](Harness& hh, std::vector<long>& res) -> sim::Task<> {
    auto r = co_await hh.transport->offload(
        [&hh]() -> sim::Task<Result<long>> {
          co_await hh.engine.delay(from_us(40));
          co_return 9L;
        },
        Priority::bulk, 0);
    EXPECT_TRUE(r.ok());
    res.push_back(r.ok() ? *r : -1L);
  }(h, results));
  h.engine.run();  // must terminate: the self-drain watchdog, not the doorbell
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 9);
  EXPECT_GE(h.counter("ikc.reply.doorbell_lost"), 1u);
  EXPECT_GE(h.counter("ikc.reply.self_drain"), 1u);
  EXPECT_EQ(h.counter("ikc.reply.wakeup"), 0u);
}

TEST(IkcAdaptive, DrainLimitConvergesToOfferedDepth) {
  // A constant offered depth of 12 must pull the drain limit up from the
  // static floor until (nearly) the whole wave drains in one batch.
  auto cfg = ring_cfg();
  cfg.linux_service_cpus = 1;
  cfg.ikc_batch = 1;  // adaptive sizing must grow past the static floor
  Harness h(cfg);
  constexpr int kDepth = 12;
  std::vector<long> order, results;
  std::uint64_t last_round_drains = 0;
  for (int round = 0; round < 8; ++round) {
    const std::uint64_t before = h.counter("ikc.ring.batch_drain");
    for (int i = 0; i < kDepth; ++i)
      h.submit(round * 100 + i, Priority::bulk, i, order, results);
    h.engine.run();
    last_round_drains = h.counter("ikc.ring.batch_drain") - before;
  }
  ASSERT_EQ(results.size(), 8u * kDepth);
  EXPECT_GE(h.transport->loop_batch_limit(0), 9)
      << "EWMA sizing failed to grow toward the offered depth";
  EXPECT_LE(h.transport->loop_batch_limit(0), cfg.ikc_ring_depth);
  // Steady state alternates one full-wave observation (12) with one
  // leftover observation per round; the EWMA settles between the two.
  EXPECT_GE(h.transport->loop_depth_ewma(0), 4.0);
  EXPECT_LE(last_round_drains, 3u)
      << "converged loop should drain a 12-deep wave in one or two batches";
  EXPECT_GE(h.counter("ikc.adaptive.grow"), 1u);
}

TEST(IkcAdaptive, StaticBatchIgnoresObservedDepth) {
  auto cfg = ring_cfg();
  cfg.ikc_adaptive_batch = false;
  cfg.linux_service_cpus = 1;
  cfg.ikc_batch = 4;
  Harness h(cfg);
  std::vector<long> order, results;
  for (int i = 0; i < 16; ++i) h.submit(i, Priority::bulk, i, order, results);
  h.engine.run();
  ASSERT_EQ(results.size(), 16u);
  EXPECT_EQ(h.counter("ikc.adaptive.grow"), 0u);
  EXPECT_EQ(h.counter("ikc.adaptive.shrink"), 0u);
  EXPECT_GE(h.counter("ikc.ring.batch_drain"), 4u) << "16 ops at a hard cap of 4";
}

TEST(IkcNuma, PinnedLoopsOwnTheirChannelsSockets) {
  // Default topology: 68 cores / 4 sockets, 4 service loops → one loop per
  // socket, and every channel must land on the loop pinned to its ring's
  // socket.
  auto cfg = ring_cfg();
  Harness h(cfg);
  ASSERT_EQ(h.transport->num_loops(), 4);
  for (int l = 0; l < 4; ++l) EXPECT_EQ(h.transport->loop_socket(l), l);
  for (int ch = 0; ch < h.transport->num_channels(); ++ch)
    EXPECT_EQ(h.transport->loop_socket(h.transport->loop_of(ch)),
              h.transport->channel_socket(ch))
        << "channel " << ch << " drained from a foreign socket";
  EXPECT_EQ(h.counter("ikc.numa.matched_channel"),
            static_cast<std::uint64_t>(h.transport->num_channels()));
  EXPECT_EQ(h.counter("ikc.numa.far_channel"), 0u);
  // And the service must then be all-local.
  std::vector<long> order, results;
  for (int i = 0; i < 8; ++i) h.submit(i, Priority::bulk, i, order, results);
  h.engine.run();
  EXPECT_GE(h.counter("ikc.numa.local_drain"), 1u);
  EXPECT_EQ(h.counter("ikc.numa.remote_drain"), 0u);
}

TEST(IkcNuma, UnpinnedShardingIsRoundRobin) {
  auto cfg = ring_cfg();
  cfg.ikc_numa_pin = false;
  Harness h(cfg);
  for (int ch = 0; ch < h.transport->num_channels(); ++ch)
    EXPECT_EQ(h.transport->loop_of(ch), ch % h.transport->num_loops());
  EXPECT_EQ(h.counter("ikc.numa.pinned_loop"), 0u);
}

TEST(IkcNuma, RingMemoryPlacedNearOwnerSocket) {
  auto cfg = ring_cfg();
  mem::PhysMap phys = mem::PhysMap::knl(256ull << 20, 1ull << 30, cfg.numa_per_kind);
  Harness h(cfg, &phys);
  for (int ch = 0; ch < h.transport->num_channels(); ++ch) {
    const mem::PhysAddr addr = h.transport->channel_ring_phys(ch);
    ASSERT_NE(addr, 0u) << "ring memory must be really allocated with a PhysMap";
    const auto dom = phys.domain_of(addr);
    ASSERT_TRUE(dom.has_value());
    EXPECT_EQ(static_cast<int>(*dom % static_cast<std::size_t>(cfg.numa_per_kind)),
              h.transport->channel_socket(ch));
  }
  // The destructor must return every ring region to the map.
  const std::uint64_t free_before =
      phys.free_bytes(mem::MemKind::mcdram) + phys.free_bytes(mem::MemKind::ddr);
  h.transport.reset();
  const std::uint64_t free_after =
      phys.free_bytes(mem::MemKind::mcdram) + phys.free_bytes(mem::MemKind::ddr);
  EXPECT_EQ(free_after, free_before + static_cast<std::uint64_t>(h.cfg.ikc_channels == 0
                                                                     ? h.cfg.app_cores
                                                                     : h.cfg.ikc_channels) *
                                          cfg.ikc_ring_region_bytes);
}

/// Run one elastic lifecycle op to completion and return its status.
Status run_elastic(Harness& h, bool retire) {
  Status out = Errno::eagain;
  // Deliberately not a conditional expression: `r ? co_await a() : co_await
  // b()` is miscompiled by GCC's coroutine lowering (both arms run).
  sim::spawn(h.engine, [](Harness& hh, bool r, Status& o) -> sim::Task<> {
    if (r)
      o = co_await hh.transport->retire_loop();
    else
      o = co_await hh.transport->attach_loop();
  }(h, retire, out));
  h.engine.run();
  return out;
}

TEST(IkcElastic, RetireQuiescesReshardsAndKeepsServing) {
  auto cfg = ring_cfg();
  cfg.linux_service_cpus = 3;
  Harness h(cfg);
  ASSERT_EQ(h.transport->active_loops(), 3);

  std::vector<long> order, results;
  for (int i = 0; i < 12; ++i) h.submit(i, Priority::bulk, i, order, results);
  h.engine.run();
  ASSERT_EQ(results.size(), 12u);

  EXPECT_TRUE(run_elastic(h, /*retire=*/true).ok());
  EXPECT_EQ(h.transport->active_loops(), 2);
  EXPECT_EQ(h.counter("ikc.elastic.loop_retired"), 1u);
  EXPECT_GE(h.counter("ikc.elastic.reshard"), 1u);
  // Every channel now belongs to a surviving loop — the re-shard over the
  // active prefix left nothing routed at the retired slot.
  for (int c = 0; c < h.transport->num_channels(); ++c)
    EXPECT_LT(h.transport->loop_of(c), 2) << "channel " << c;

  // Traffic after the shrink completes on the survivors, timeout-free.
  for (int i = 100; i < 112; ++i) h.submit(i, Priority::bulk, i, order, results);
  h.engine.run();
  EXPECT_EQ(results.size(), 24u);
  EXPECT_EQ(h.counter("ikc.ring.timeout"), 0u);
}

TEST(IkcElastic, RetireWithInflightRequestsLosesNothing) {
  auto cfg = ring_cfg();
  cfg.linux_service_cpus = 2;
  Harness h(cfg);
  std::vector<long> order, results;
  // Queue a burst on every channel, then retire while it is in flight: the
  // retiring loop finishes what it claimed, the re-shard hands its backlog
  // to loop 0, and every op still completes exactly once.
  constexpr int kOps = 32;
  for (int i = 0; i < kOps; ++i) h.submit(i, Priority::bulk, i, order, results);
  Status retire = Errno::eagain;
  sim::spawn(h.engine, [](Harness& hh, Status& o) -> sim::Task<> {
    o = co_await hh.transport->retire_loop();
  }(h, retire));
  h.engine.run();
  EXPECT_TRUE(retire.ok());
  EXPECT_EQ(h.transport->active_loops(), 1);
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kOps));
  std::vector<int> seen(kOps, 0);
  for (long t : order) ++seen[static_cast<std::size_t>(t)];
  for (int i = 0; i < kOps; ++i) EXPECT_EQ(seen[i], 1) << "op " << i;
}

TEST(IkcElastic, LastLoopCannotRetireAndAttachIsBoundedBySlots) {
  auto cfg = ring_cfg();
  cfg.linux_service_cpus = 2;
  Harness h(cfg);
  EXPECT_EQ(h.transport->max_loops(), 2);  // no elastic headroom configured
  EXPECT_TRUE(run_elastic(h, /*retire=*/true).ok());
  // One active loop left: retiring it would leave offloads with no Linux side.
  EXPECT_EQ(run_elastic(h, /*retire=*/true).error(), Errno::einval);
  // Revive the slot, then attach past the provisioned ceiling.
  EXPECT_TRUE(run_elastic(h, /*retire=*/false).ok());
  EXPECT_EQ(h.transport->active_loops(), 2);
  EXPECT_EQ(run_elastic(h, /*retire=*/false).error(), Errno::enospc);
  EXPECT_EQ(h.counter("ikc.elastic.loop_attached"), 1u);
}

TEST(IkcElastic, AttachHeadroomGrowsBeyondBootShape) {
  auto cfg = ring_cfg();
  cfg.linux_service_cpus = 2;
  cfg.elastic_max_service_cpus = 4;  // pre-provision two spare loop slots
  Harness h(cfg);
  EXPECT_EQ(h.transport->max_loops(), 4);
  EXPECT_TRUE(run_elastic(h, /*retire=*/false).ok());
  EXPECT_TRUE(run_elastic(h, /*retire=*/false).ok());
  EXPECT_EQ(h.transport->active_loops(), 4);
  std::vector<long> order, results;
  for (int i = 0; i < 16; ++i) h.submit(i, Priority::bulk, i, order, results);
  h.engine.run();
  EXPECT_EQ(results.size(), 16u);
  // All four loops own channels after the grown re-shard.
  for (int l = 0; l < 4; ++l) {
    bool owns = false;
    for (int c = 0; c < h.transport->num_channels(); ++c)
      owns |= h.transport->loop_of(c) == l;
    EXPECT_TRUE(owns) << "loop " << l << " owns no channels after attach";
  }
}

// Satellite regression: a loop retired while *suspect* (or with calibrated
// EWMA drain state) must not leak that verdict into the slot's next life —
// and survivors whose channel sets changed in the re-shard must re-learn
// their depth EWMA instead of applying a limit calibrated for the old shard.
TEST(IkcElastic, ReshardResetsSuspectProbeAndEwmaState) {
  auto cfg = ring_cfg();
  cfg.linux_service_cpus = 2;
  cfg.ikc_deadline = from_us(50);
  Harness h(cfg);

  // Wedge loop 1 and drive traffic at one of its channels until the
  // timeout ladder marks it suspect.
  int victim_channel = -1;
  for (int c = 0; c < h.transport->num_channels(); ++c)
    if (h.transport->loop_of(c) == 1) { victim_channel = c; break; }
  ASSERT_GE(victim_channel, 0);
  h.transport->inject_stall(1, true);
  std::vector<long> order, results;
  for (int i = 0; i < 6; ++i) h.submit(i, Priority::control, victim_channel, order, results);
  h.engine.run();
  ASSERT_EQ(results.size(), 6u);  // recovered via retry/degrade ladder
  ASSERT_TRUE(h.transport->loop_suspect(1));

  // Retire the wedged loop (retire must cut through the injected stall),
  // then revive the slot: the fresh loop starts with a clean bill of
  // health — no inherited suspect mark, no stale drain calibration.
  EXPECT_TRUE(run_elastic(h, /*retire=*/true).ok());
  EXPECT_TRUE(run_elastic(h, /*retire=*/false).ok());
  EXPECT_FALSE(h.transport->loop_suspect(1));
  EXPECT_DOUBLE_EQ(h.transport->loop_depth_ewma(1), 0.0);
  EXPECT_EQ(h.transport->loop_batch_limit(1), std::max(h.cfg.ikc_batch, 1));
  EXPECT_GE(h.counter("ikc.elastic.health_reset"), 1u);

  // And the revived loop serves its channels without tripping the ladder.
  for (int i = 100; i < 106; ++i)
    h.submit(i, Priority::control, victim_channel, order, results);
  const std::uint64_t timeouts_before = h.counter("ikc.ring.timeout");
  h.engine.run();
  EXPECT_EQ(results.size(), 12u);
  EXPECT_EQ(h.counter("ikc.ring.timeout"), timeouts_before);
}

TEST(QueueingSummary, PercentilesFromSamples) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  const auto q = summarize_queueing(s);
  EXPECT_EQ(q.count, 100u);
  EXPECT_DOUBLE_EQ(q.mean_us, 50.5);
  EXPECT_DOUBLE_EQ(q.p50_us, 50.0);
  EXPECT_DOUBLE_EQ(q.p95_us, 95.0);
  EXPECT_DOUBLE_EQ(q.max_us, 100.0);
  const auto empty = summarize_queueing(Samples{});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.max_us, 0.0);
}

}  // namespace
}  // namespace pd::ikc
