// Calibration constants for the simulated software stack.
//
// Every cost in the model is a named constant here, so the ablation benches
// can sweep them and EXPERIMENTS.md can record exactly which knob produces
// which paper effect. Defaults are chosen to land the *relative* results of
// the paper (see DESIGN.md §5); they are not claims about absolute KNL
// timings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.hpp"
#include "src/common/time.hpp"
#include "src/os/noise.hpp"

namespace pd::os {

/// Which operating-system configuration a node boots (paper's three bars).
enum class OsMode {
  linux,         // plain Linux, HPC-tuned (nohz_full)
  mckernel,      // IHK/McKernel, all device syscalls offloaded
  mckernel_hfi,  // IHK/McKernel + HFI PicoDriver fast paths
};

constexpr const char* to_string(OsMode m) {
  switch (m) {
    case OsMode::linux: return "Linux";
    case OsMode::mckernel: return "McKernel";
    case OsMode::mckernel_hfi: return "McKernel+HFI1";
  }
  return "?";
}

/// Which transport carries offloaded syscalls across the kernel boundary
/// (src/ikc/). `direct` is the calibrated legacy path (one proxy wakeup per
/// offload); `ring` is the per-LWK-CPU shared-memory ring transport with
/// batched service loops.
enum class IkcMode {
  direct,
  ring,
};

constexpr const char* to_string(IkcMode m) {
  switch (m) {
    case IkcMode::direct: return "direct";
    case IkcMode::ring: return "ring";
  }
  return "?";
}

/// How a ring-mode completion travels back to the waiting LWK coroutine.
/// `latch` is the PR-4 shape: the service loop delivers every completion
/// with its own cross-kernel wakeup. `ring` posts completions into a
/// per-channel shared-memory reply ring that the LWK core polls, so the
/// return path needs no wakeup at all when the consumer is polling and at
/// most one doorbell per drained batch when it parked.
enum class ReplyMode {
  latch,
  ring,
};

constexpr const char* to_string(ReplyMode m) {
  switch (m) {
    case ReplyMode::latch: return "latch";
    case ReplyMode::ring: return "ring";
  }
  return "?";
}

struct Config {
  // --- node topology (OFP compute node, paper §4.1) ---------------------
  int cores_per_node = 68;
  int app_cores = 64;            // cores handed to the application
  int linux_service_cpus = 4;    // cores kept for Linux daemons/OS work
  std::uint64_t mcdram_bytes = 16ull << 30;
  std::uint64_t ddr_bytes = 96ull << 30;
  int numa_per_kind = 4;         // SNC-4

  // --- syscall & offload costs ------------------------------------------
  Dur syscall_entry = from_ns(300);        // Linux native trap in/out
  Dur lwk_syscall_entry = from_ns(120);    // LWK local syscall in/out
  Dur offload_oneway = from_us(0.8);       // IKC message latency
  Dur offload_dispatch = from_ns(600);     // proxy-side demultiplex
  Dur proxy_min_service = from_ns(800);    // floor for any offloaded service
  Dur proxy_wakeup_hot = from_us(1.2);     // schedule-in, idle cache-hot proxy
  Dur proxy_wakeup_cold = from_us(8.0);    // schedule-in under full contention
  // Driver work run by the proxy is slower than the same code run natively:
  // cross-CPU cache traffic, cold TLBs, and a loaded service core. The
  // paper's UMT/HACC collapse requires this factor; see the
  // bench_ablation_offload_* sweeps.
  double offload_service_multiplier = 4.0;
  // Under contention every additional runnable proxy degrades service:
  // runqueue management, cache/TLB thrash, IPI storms. Charged per waiting
  // proxy at dispatch time; this is what turns "busy" into "collapsed"
  // (UMT2013, Fig. 6a).
  Dur sched_thrash_per_waiter = from_us(1.5);
  int sched_thrash_cap_waiters = 20;  // degradation saturates beyond this

  // --- IKC ring transport (src/ikc/, ring mode only) ----------------------
  IkcMode ikc_mode = IkcMode::direct;  // legacy path stays the default
  int ikc_channels = 0;                // 0 → one per app core
  int ikc_ring_depth = 64;             // slots per priority ring
  int ikc_batch = 8;                   // max requests drained per wakeup
  Dur ikc_deadline = from_ms(10);      // ring-residency watchdog
  int ikc_max_retries = 2;             // rings tried after a timeout
  Dur ikc_retry_backoff = from_us(2);  // scaled by the attempt number
  Dur ikc_poll_interval = from_us(5);  // service-loop poll period
  int ikc_poll_spins = 4;              // polls before parking on doorbell
  int ikc_stall_threshold = 3;         // consecutive timeouts → suspect loop
  int ikc_probe_interval = 16;         // every Nth submit probes a suspect
  Dur ikc_doorbell_cost = from_ns(200);  // cross-kernel IPI to wake a loop
  Dur ikc_lock_cost = from_ns(60);       // ring spin-lock hand-off

  // --- IKC reply path (ring mode only) ------------------------------------
  ReplyMode ikc_reply_mode = ReplyMode::ring;  // shared-memory reply rings
  int ikc_reply_depth = 64;              // completion slots per channel
  Dur ikc_reply_post_cost = from_ns(80);   // write one completion slot
  Dur ikc_reply_wakeup_cost = from_ns(600);  // completion IPI to the LWK core
  Dur ikc_reply_poll_interval = from_us(1);  // LWK slot-poll period
  Dur ikc_reply_poll_budget = from_us(200);  // polling before parking
  Dur ikc_reply_deadline = from_ms(2);   // parked consumer self-drains after
  // Autosize: grow a channel's reply ring (2x, up to ikc_reply_max_depth)
  // once it has hit ring-full `ikc_reply_autosize_threshold` times, instead
  // of paying a per-request fallback wakeup forever. ikc_reply_depth then
  // only sets the starting depth.
  bool ikc_reply_autosize = true;
  int ikc_reply_autosize_threshold = 4;
  int ikc_reply_max_depth = 1024;

  // --- IKC adaptive batching (ring mode only) -----------------------------
  bool ikc_adaptive_batch = true;        // size drains from observed depth
  double ikc_adaptive_alpha = 0.25;      // EWMA weight of the newest depth
  double ikc_adaptive_headroom = 1.5;    // drain limit = ewma * headroom

  // --- IKC NUMA placement (ring mode only) --------------------------------
  bool ikc_numa_pin = true;              // pin loops to their rings' socket
  std::uint64_t ikc_ring_region_bytes = 16384;  // per-channel ring memory
  Dur ikc_remote_drain_cost = from_ns(300);  // cross-socket ring-line pull

  // --- IKC multi-tenant QoS (ring mode only) ------------------------------
  // Weighted-fair drain: service loops claim ring heads in per-job
  // virtual-time order (vtime advances 1/weight per claimed request) inside
  // each priority class, so N jobs sharing a loop split its drain capacity
  // by weight instead of by who queued deepest. `false` keeps the PR-4
  // strict two-class drain (all control across channels, then bulk) as the
  // reference scheduler for the fairness equivalence harness; with a single
  // job (or one job per channel) the two orders are identical by
  // construction — the degenerate case the property test pins.
  bool ikc_fair_drain = true;
  // Per-job drain weight, indexed by JobId; jobs past the end (and an empty
  // vector) weigh 1.0. Weights must be > 0.
  std::vector<double> ikc_job_weights;
  // Admission control: bound each job's in-flight offloads (accepted but
  // not yet completed) to `ikc_job_credits × weight`, rounded up to >= 1.
  // On exhaustion the submitter backs off `ikc_credit_backoff × attempt`
  // up to `ikc_credit_retries` times waiting for a credit, then fails the
  // offload with EAGAIN instead of queueing without bound — a flooding
  // tenant throttles itself, it does not grow every ring. 0 = unlimited
  // (the single-tenant default).
  int ikc_job_credits = 0;
  int ikc_credit_retries = 3;
  Dur ikc_credit_backoff = from_us(5);

  // --- elastic CPU repartitioning (src/os/elastic.*) ----------------------
  // The PartitionController moves CPUs between the Linux service pool and
  // the LWK at runtime: shrink retires the highest service loop (quiesce →
  // re-shard → kheap drain → hand the core over), grow reverses it. The
  // monitor, when enabled, drives those ops from an EWMA of the offload
  // queueing p95 (`QueueingSummary`) with hysteresis so the partition
  // never flaps.
  bool elastic_enabled = false;          // autostart the p95 monitor
  int elastic_min_service_cpus = 1;      // shrink floor (Linux keeps >= 1)
  // Grow ceiling; 0 = the boot `linux_service_cpus` (no extra loop slots
  // are provisioned). > linux_service_cpus pre-sizes the transport's loop
  // table so the service set can grow past its boot shape.
  int elastic_max_service_cpus = 0;
  Dur elastic_check_interval = from_ms(5);   // monitor sampling period
  double elastic_ewma_alpha = 0.3;           // EWMA weight of the newest p95
  double elastic_p95_grow_us = 400.0;        // EWMA above → grow the pool
  double elastic_p95_shrink_us = 50.0;       // EWMA below → shrink the pool
  int elastic_hysteresis_checks = 3;     // consecutive breaches before acting
  Dur elastic_cooldown = from_ms(20);    // min gap between repartitions

  // --- driver fast-path work --------------------------------------------
  Dur gup_per_page = from_ns(60);         // get_user_pages, per 4 KiB page
  Dur ptw_per_page = from_ns(18);          // LWK page-table walk, per page
  Dur sdma_submit_per_desc = from_ns(90); // build + ring-write one descriptor
  Dur sdma_submit_base = from_ns(350);     // engine reserve + request setup
  Dur tid_program_per_entry = from_ns(120);// RcvArray programming, per entry
  Dur tid_program_base = from_ns(400);
  Dur irq_handler = from_us(1.1);          // SDMA completion IRQ + callbacks
  Dur driver_open_cost = from_us(25);      // context setup in open()
  Dur driver_mmap_cost = from_us(6);       // CSR/device mapping setup
  Dur driver_poll_cost = from_ns(700);

  // --- pd-doom command-queue accelerator ---------------------------------
  Dur doom_cmd_build = from_ns(140);         // validate + stage one command
  Dur doom_pte_program = from_ns(95);        // program one DMA page-table entry
  Dur doom_submit_base = from_ns(420);       // batch setup + ring reservation
  Dur doom_fence_poll = from_us(2);          // wait-fence poll period
  // A fence whose completion IRQ has not arrived after this long is checked
  // against the device's retire register; a retired-but-unreported fence is
  // recovered inline (the lost-IRQ rung).
  Dur doom_fence_irq_timeout = from_us(300);

  // --- PicoDriver-side costs --------------------------------------------
  Dur pico_bind_cost = from_us(150);       // per-rank kernel-mapping setup
  Dur pico_lock_acquire = from_ns(60);     // shared spin-lock hand-off
  // Extent-cache hit: validate the generation + copy cached runs, instead
  // of the per-page table walk (registration-cache amortization, §3.4).
  Dur pico_extent_cache_hit = from_ns(25);
  // Ring-full wait under the engine lock: bounded exponential backoff,
  // then give the lock up and fall back to the Linux writev path instead
  // of spinning unboundedly while holding the shared lock.
  int pico_ring_backoff_attempts = 8;
  Dur pico_ring_backoff_base = from_ns(500);
  Dur pico_ring_backoff_cap = from_us(8);

  // --- per-tenant driver quotas ------------------------------------------
  // TID/RcvArray quota behaviour when a context is at its expected_count
  // share: evict the context's *own* least-recently-registered TID entry
  // (unprogram + unpin, never a neighbour context's) to make room, instead
  // of failing the registration with ENOSPC. A request that cannot fit
  // even after evicting everything the context owns still gets ENOSPC.
  // Off by default: PSM's window grants treat ENOSPC as "retry after the
  // lazy frees drain" and must not have in-flight windows recycled under
  // them; a tenant using TID entries as a pure registration cache opts in.
  bool hfi_tid_quota_evict = false;
  // Per-tenant extent-cache footprint: how many per-open-file extent
  // caches one process may keep live in the PicoDriver. Opening a file
  // past the quota drops the same process's least-recently-used file
  // cache (pico.extent_cache.quota_file_evicted) — never another
  // tenant's. 0 = unlimited (the single-tenant default).
  int pico_extent_quota_files = 0;

  // --- kheap NUMA partitions (per SNC quadrant/"socket") ------------------
  // Byte budgets for each socket's near (MCDRAM-like) and far (DDR-like)
  // kernel-heap partition; the cold path falls back near → far → remote.
  std::uint64_t kheap_near_bytes = 256ull << 20;
  std::uint64_t kheap_far_bytes = 4ull << 30;

  // --- memory management ------------------------------------------------
  Dur mmap_base_cost = from_us(1.2);
  Dur linux_mmap_per_page = from_ns(90);
  Dur lwk_mmap_per_page = from_ns(60);     // large pages amortize
  Dur linux_munmap_per_page = from_ns(70);
  Dur lwk_munmap_per_page = from_ns(210);  // the §4.3 shortcoming (Fig. 9)
  double memcpy_bytes_per_sec = 5.0e9;     // single KNL core copy bandwidth

  // --- OS noise (nohz_full Linux vs noise-free LWK) ----------------------
  // Shaped per-kernel noise (src/os/noise.hpp): the Linux side defaults to
  // the calibrated nohz_full model (0.2% steady steal + rare daemon ticks,
  // numerically identical to the seed's scalar knobs), the LWK to silence.
  // `NoiseProfile::presets()` is the bench_noise_sweep axis.
  NoiseProfile linux_noise = NoiseProfile::calibrated();
  NoiseProfile lwk_noise = NoiseProfile::none();
  // Base seed for the per-kernel correlated-stall epoch streams; each kernel
  // instance derives its own stream from (noise_seed, node id), so nodes
  // straggle independently under the `correlated` profile.
  std::uint64_t noise_seed = 0x5EED'0001'5Eull;

  // --- PSM / protocol knobs ----------------------------------------------
  std::uint64_t pio_threshold = 8192;        // <= : PIO from user space
  std::uint64_t sdma_threshold = 65536;      // <= : eager SDMA; > : expected
  std::uint64_t expected_window = 131072;    // bytes per TID window / request
  int expected_concurrency = 2;              // windows in flight per message
  Dur psm_progress_poll = from_ns(150);      // one progress-loop iteration
  Dur psm_matching_cost = from_ns(250);      // MQ tag match per message
  Dur pio_send_overhead = from_ns(450);      // PIO doorbell + header build
  Dur psm_wait_sleep = from_ns(400);         // kernel visit inside MPI_Wait

  // --- hardware ----------------------------------------------------------
  std::uint64_t linux_sdma_desc_bytes = 4096;   // PAGE_SIZE cap (paper §3.4)
  std::uint64_t pico_sdma_desc_bytes = 10240;   // hardware max exploited

  /// Construction-time sanity check. A Config that selects the ring
  /// transport but reserves no Linux service CPUs used to surface only
  /// later, as a deadline ladder full of timeouts; now it is an EINVAL
  /// here, with `why` (when non-null) naming the offending knob.
  Status validate(std::string* why = nullptr) const {
    const auto fail = [&](const char* reason) -> Status {
      if (why != nullptr) *why = reason;
      return Errno::einval;
    };
    if (ikc_mode == IkcMode::ring) {
      if (linux_service_cpus <= 0)
        return fail("ikc_mode=ring needs linux_service_cpus > 0: the ring "
                    "transport is drained by dedicated Linux service loops");
      if (ikc_ring_depth <= 0) return fail("ikc_ring_depth must be > 0");
      if (ikc_batch <= 0) return fail("ikc_batch must be > 0");
      if (ikc_reply_mode == ReplyMode::ring && ikc_reply_depth <= 0)
        return fail("ikc_reply_mode=ring needs ikc_reply_depth > 0");
      if (ikc_reply_autosize && ikc_reply_autosize_threshold <= 0)
        return fail("ikc_reply_autosize_threshold must be > 0");
      if (ikc_reply_autosize && ikc_reply_max_depth < ikc_reply_depth)
        return fail("ikc_reply_max_depth must be >= ikc_reply_depth");
      if (ikc_adaptive_batch &&
          (ikc_adaptive_alpha <= 0.0 || ikc_adaptive_alpha > 1.0))
        return fail("ikc_adaptive_alpha must be in (0, 1]");
      if (ikc_adaptive_batch && ikc_adaptive_headroom < 1.0)
        return fail("ikc_adaptive_headroom must be >= 1.0");
      for (const double w : ikc_job_weights)
        if (!(w > 0.0))
          return fail("ikc_job_weights entries must be > 0: a zero-weight "
                      "job would never be drained");
      if (ikc_job_credits < 0) return fail("ikc_job_credits must be >= 0");
      if (ikc_job_credits > 0 && ikc_credit_retries < 0)
        return fail("ikc_credit_retries must be >= 0");
      if (ikc_job_credits > 0 && ikc_credit_backoff < 0)
        return fail("ikc_credit_backoff must be >= 0");
    }
    if (const Status s = linux_noise.validate(why); !s.ok()) return s;
    if (const Status s = lwk_noise.validate(why); !s.ok()) return s;
    if (doom_fence_poll <= 0)
      return fail("doom_fence_poll must be > 0: wait-fence would spin");
    if (doom_fence_irq_timeout < doom_fence_poll)
      return fail("doom_fence_irq_timeout must be >= doom_fence_poll: the "
                  "lost-IRQ check fires from the poll loop");
    if (pico_extent_quota_files < 0)
      return fail("pico_extent_quota_files must be >= 0 (0 = unlimited)");
    if (elastic_min_service_cpus < 1)
      return fail("elastic_min_service_cpus must be >= 1: retiring the last "
                  "service loop would leave offloads with no Linux side");
    if (elastic_max_service_cpus != 0) {
      if (elastic_max_service_cpus < elastic_min_service_cpus)
        return fail("elastic_max_service_cpus must be 0 (= boot shape) or "
                    ">= elastic_min_service_cpus");
      if (elastic_max_service_cpus >= cores_per_node)
        return fail("elastic_max_service_cpus must leave the LWK at least "
                    "one core (< cores_per_node)");
    }
    if (elastic_enabled) {
      if (elastic_min_service_cpus > linux_service_cpus)
        return fail("elastic_min_service_cpus must be <= linux_service_cpus: "
                    "the boot shape is inside the elastic range");
      if (elastic_check_interval <= 0)
        return fail("elastic_check_interval must be > 0");
      if (elastic_ewma_alpha <= 0.0 || elastic_ewma_alpha > 1.0)
        return fail("elastic_ewma_alpha must be in (0, 1]");
      if (elastic_p95_shrink_us < 0.0 ||
          elastic_p95_grow_us <= elastic_p95_shrink_us)
        return fail("elastic p95 thresholds must satisfy 0 <= shrink < grow "
                    "(an overlapping band would flap)");
      if (elastic_hysteresis_checks < 1)
        return fail("elastic_hysteresis_checks must be >= 1");
      if (elastic_cooldown < 0) return fail("elastic_cooldown must be >= 0");
    }
    return Status::success();
  }
};

}  // namespace pd::os
