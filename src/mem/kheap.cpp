#include "src/mem/kheap.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace pd::mem {

namespace {
// Address slice per (socket, near|far) partition. Budgets cap the bytes a
// partition may hold; the stride caps the address range it may span. Kept
// small enough that a full 4-socket LWK heap (8 slices) stays inside the
// 32 GiB gap before the Linux kernel's heap base — the unified direct map
// must keep the two heaps' addresses disjoint.
constexpr std::uint64_t kPartitionStride = 1ull << 31;  // 2 GiB per slice
}  // namespace

KernelHeap::KernelHeap(std::vector<int> owned_cpus, ForeignFreePolicy policy,
                       PhysAddr heap_base, bool slab_enabled)
    : KernelHeap(std::move(owned_cpus), policy, NumaTopology(), PartitionBudget{},
                 PlacementPolicy::flat, heap_base, slab_enabled) {}

KernelHeap::KernelHeap(std::vector<int> owned_cpus, ForeignFreePolicy policy,
                       NumaTopology topo, PartitionBudget budget, PlacementPolicy placement,
                       PhysAddr heap_base, bool slab_enabled)
    : owned_cpus_(std::move(owned_cpus)),
      policy_(policy),
      topo_(topo),
      budget_(budget),
      placement_(placement),
      heap_base_(heap_base),
      slab_enabled_(slab_enabled) {
  for (int cpu : owned_cpus_) magazines_[cpu];  // one magazine set per core
  near_arenas_.resize(static_cast<std::size_t>(topo_.sockets()));
  far_arenas_.resize(static_cast<std::size_t>(topo_.sockets()));
  for (int s = 0; s < topo_.sockets(); ++s) {
    auto& near = near_arenas_[static_cast<std::size_t>(s)];
    auto& far = far_arenas_[static_cast<std::size_t>(s)];
    near.next = heap_base_ + static_cast<std::uint64_t>(2 * s) * kPartitionStride;
    near.end = near.next + kPartitionStride;
    far.next = heap_base_ + static_cast<std::uint64_t>(2 * s + 1) * kPartitionStride;
    far.end = far.next + kPartitionStride;
  }
}

bool KernelHeap::owns_cpu(int cpu) const {
  return std::find(owned_cpus_.begin(), owned_cpus_.end(), cpu) != owned_cpus_.end();
}

std::size_t KernelHeap::class_for(std::uint64_t size) {
  for (std::size_t i = 0; i < kSizeClasses.size(); ++i)
    if (size <= kSizeClasses[i]) return i;
  return kSizeClasses.size();
}

bool KernelHeap::carve_from(Arena& arena, std::uint64_t budget, std::uint64_t capacity,
                            PhysAddr* out) {
  if (arena.used + capacity > budget) return false;
  const PhysAddr spaced = page_ceil(arena.next + capacity, 64);  // cacheline spacing
  if (spaced > arena.end) return false;
  *out = arena.next;
  arena.next = spaced;
  arena.used += capacity;
  return true;
}

Result<PhysAddr> KernelHeap::carve(std::uint64_t capacity, int cpu, int* socket_out,
                                   bool* near_out) {
  const int caller_socket = topo_.socket_of(cpu);
  const int home = placement_ == PlacementPolicy::numa_aware ? caller_socket : 0;
  PhysAddr addr = 0;
  if (carve_from(near_arenas_[static_cast<std::size_t>(home)], budget_.near_bytes, capacity,
                 &addr)) {
    *socket_out = home;
    *near_out = true;
    // Under flat placement a caller on another socket still lands in
    // socket 0's partition: that is a remote placement, not a near one.
    if (home == caller_socket) ++stats_.near_allocs;
    else ++stats_.far_allocs;
    return addr;
  }
  ++stats_.partition_exhausted;
  if (carve_from(far_arenas_[static_cast<std::size_t>(home)], budget_.far_bytes, capacity,
                 &addr)) {
    *socket_out = home;
    *near_out = false;
    ++stats_.far_allocs;
    return addr;
  }
  // Both home partitions exhausted: graceful spill to any other socket
  // (near slices first) before failing the allocation outright.
  for (int s = 0; s < topo_.sockets(); ++s) {
    if (s == home) continue;
    if (carve_from(near_arenas_[static_cast<std::size_t>(s)], budget_.near_bytes, capacity,
                   &addr)) {
      *socket_out = s;
      *near_out = true;
      ++stats_.far_allocs;
      return addr;
    }
    if (carve_from(far_arenas_[static_cast<std::size_t>(s)], budget_.far_bytes, capacity,
                   &addr)) {
      *socket_out = s;
      *near_out = false;
      ++stats_.far_allocs;
      return addr;
    }
  }
  return Errno::enomem;
}

Result<PhysAddr> KernelHeap::kmalloc(std::uint64_t size, int cpu) {
  if (size == 0) return Errno::einval;
  if (!owns_cpu(cpu)) return Errno::eperm;

  const std::size_t cls = class_for(size);
  if (slab_enabled_ && cls < kSizeClasses.size()) {
    auto& magazine = magazines_[cpu][cls];
    if (!magazine.empty()) {
      const PhysAddr addr = magazine.back();
      magazine.pop_back();
      Block& block = blocks_[addr];
      block.size = size;
      block.owner_cpu = cpu;
      block.state = BlockState::live;
      std::memset(block.bytes.get(), 0, block.capacity);
      ++stats_.allocs;
      ++stats_.slab_reuses;
      stats_.bytes_live += size;
      ++live_blocks_;
      return addr;
    }
  }

  Block block;
  block.size = size;
  block.capacity = cls < kSizeClasses.size() ? kSizeClasses[cls] : size;
  block.owner_cpu = cpu;
  block.state = BlockState::live;
  block.bytes = std::make_unique<std::uint8_t[]>(block.capacity);
  std::memset(block.bytes.get(), 0, block.capacity);

  // Magazine refill / cold path: the address (the simulated placement)
  // comes from the calling CPU's partition under numa_aware.
  auto addr = carve(block.capacity, cpu, &block.arena_socket, &block.arena_near);
  if (!addr.ok()) return addr.error();
  blocks_.emplace(*addr, std::move(block));
  ++stats_.allocs;
  ++stats_.host_allocs;
  stats_.bytes_live += size;
  ++live_blocks_;
  return *addr;
}

void KernelHeap::park_on_magazine(PhysAddr addr, Block& block) {
  const std::size_t cls = class_for(block.capacity);
  if (slab_enabled_ && cls < kSizeClasses.size() && owns_cpu(block.owner_cpu)) {
    block.state = BlockState::parked;
    magazines_[block.owner_cpu][cls].push_back(addr);
    ++stats_.slab_recycles;
  } else {
    // Returned to the host: the partition's byte budget frees up (the
    // address slice itself is bump-allocated and not reused).
    auto& arena = (block.arena_near ? near_arenas_
                                    : far_arenas_)[static_cast<std::size_t>(block.arena_socket)];
    arena.used -= block.capacity;
    blocks_.erase(addr);
  }
}

Status KernelHeap::kfree(PhysAddr addr, int cpu) {
  auto it = blocks_.find(addr);
  if (it == blocks_.end()) return Errno::einval;
  if (it->second.state != BlockState::live) {
    // Queued for a drain or already parked on a magazine: a double free.
    // The block used to stay `live` while queued, so a second foreign free
    // would re-enqueue it and double-count remote_frees — now it is caught.
    ++stats_.double_frees;
    return Errno::einval;
  }

  if (owns_cpu(cpu)) {
    stats_.bytes_live -= it->second.size;
    ++stats_.local_frees;
    --live_blocks_;
    park_on_magazine(addr, it->second);
    return Status::success();
  }

  if (policy_ == ForeignFreePolicy::fail) {
    // Original McKernel: the per-core free list for `cpu` does not exist.
    ++stats_.rejected_frees;
    return Errno::eperm;
  }

  // PicoDriver extension: park the block on the owner core's remote queue,
  // tagged with the freeing CPU's socket so the drain can batch per source.
  it->second.state = BlockState::queued;
  remote_free_queues_[it->second.owner_cpu].push_back(
      RemoteFree{addr, topo_.socket_of(cpu)});
  ++stats_.remote_frees;
  return Status::success();
}

std::size_t KernelHeap::drain_remote_frees(int cpu) {
  auto qit = remote_free_queues_.find(cpu);
  if (qit == remote_free_queues_.end() || qit->second.empty()) return 0;
  // Recycle every queued block, then clear. Nothing re-enters the queue
  // while parking, and clear() keeps the deque's chunk — so the
  // steady-state free/drain cycle never touches the host heap.
  std::deque<RemoteFree>& pending = qit->second;
  std::size_t drained = 0;
  const int owner_socket = topo_.socket_of(cpu);
  auto reclaim = [&](const RemoteFree& rf) {
    auto it = blocks_.find(rf.addr);
    if (it == blocks_.end() || it->second.state != BlockState::queued) return false;
    stats_.bytes_live -= it->second.size;
    --live_blocks_;
    park_on_magazine(rf.addr, it->second);
    ++drained;
    return true;
  };
  if (placement_ == PlacementPolicy::numa_aware && topo_.sockets() > 1) {
    // One pass per source socket: all blocks a socket's CPUs freed come
    // back as one coalesced batch, so a completion-heavy queue costs one
    // cross-socket reclaim event per socket instead of one per block.
    for (int s = 0; s < topo_.sockets(); ++s) {
      bool any = false;
      for (const RemoteFree& rf : pending)
        if (rf.source_socket == s && reclaim(rf)) any = true;
      if (any && s != owner_socket) ++stats_.cross_socket_drains;
    }
  } else {
    // Placement-ignorant drain: entries are reclaimed in FIFO order and
    // every remote-socket block is its own cross-socket event.
    for (const RemoteFree& rf : pending)
      if (reclaim(rf) && rf.source_socket != owner_socket) ++stats_.cross_socket_drains;
  }
  pending.clear();
  return drained;
}

Status KernelHeap::adopt_cpu(int cpu) {
  if (cpu < 0 || owns_cpu(cpu)) return Errno::einval;
  owned_cpus_.push_back(cpu);
  std::sort(owned_cpus_.begin(), owned_cpus_.end());
  magazines_[cpu];  // empty magazine set, like a boot-time core
  ++stats_.cpu_adoptions;
  return Status::success();
}

Status KernelHeap::release_cpu(int cpu, std::size_t* drained_out) {
  if (!owns_cpu(cpu)) return Errno::einval;
  if (owned_cpus_.size() <= 1) return Errno::ebusy;  // a heap needs an owner
  // Quiesce the departing core's remote-free queue while it can still be
  // drained under its own identity: blocks park on its magazines first and
  // are donated with the rest below.
  const std::size_t drained = drain_remote_frees(cpu);
  if (drained_out != nullptr) *drained_out = drained;
  // Heir: a surviving owned core, same socket preferred so donated blocks
  // keep their placement affinity.
  int heir = -1;
  for (int cand : owned_cpus_) {
    if (cand == cpu) continue;
    if (topo_.socket_of(cand) == topo_.socket_of(cpu)) {
      heir = cand;
      break;
    }
  }
  if (heir < 0)
    for (int cand : owned_cpus_)
      if (cand != cpu) {
        heir = cand;
        break;
      }
  // Donate the parked magazines class by class.
  if (auto mit = magazines_.find(cpu); mit != magazines_.end()) {
    for (std::size_t cls = 0; cls < kSizeClasses.size(); ++cls) {
      auto& from = mit->second[cls];
      for (const PhysAddr addr : from) {
        blocks_[addr].owner_cpu = heir;
        ++stats_.rehomed_blocks;
      }
      auto& to = magazines_[heir][cls];
      to.insert(to.end(), from.begin(), from.end());
      from.clear();
    }
    magazines_.erase(cpu);
  }
  // Live (and still-queued) blocks the core owns re-home too: an SDMA
  // completion freeing them later must find a queue somebody drains.
  for (auto& [addr, block] : blocks_)
    if (block.owner_cpu == cpu) {
      block.owner_cpu = heir;
      ++stats_.rehomed_blocks;
    }
  remote_free_queues_.erase(cpu);  // drained above; drop the empty deque
  owned_cpus_.erase(std::find(owned_cpus_.begin(), owned_cpus_.end(), cpu));
  ++stats_.cpu_releases;
  return Status::success();
}

std::span<std::uint8_t> KernelHeap::data(PhysAddr addr) {
  auto it = blocks_.find(addr);
  // Queued blocks are conceptually freed: their bytes must not be exposed
  // to (IRQ-context) writers while they await the owner's drain.
  if (it == blocks_.end() || it->second.state != BlockState::live) return {};
  return {it->second.bytes.get(), it->second.size};
}

std::size_t KernelHeap::remote_queue_depth(int cpu) const {
  auto it = remote_free_queues_.find(cpu);
  return it == remote_free_queues_.end() ? 0 : it->second.size();
}

std::size_t KernelHeap::magazine_depth(int cpu) const {
  auto it = magazines_.find(cpu);
  if (it == magazines_.end()) return 0;
  std::size_t total = 0;
  for (const auto& list : it->second) total += list.size();
  return total;
}

std::uint64_t KernelHeap::near_used(int socket) const {
  return near_arenas_[static_cast<std::size_t>(socket)].used;
}

std::uint64_t KernelHeap::far_used(int socket) const {
  return far_arenas_[static_cast<std::size_t>(socket)].used;
}

}  // namespace pd::mem
