// Physical memory map and buddy page allocator.
//
// A node's physical memory is a set of NUMA domains (KNL SNC-4: four MCDRAM
// + four DDR4 domains). Each domain is served by a binary-buddy allocator
// (orders 4 KiB … 1 GiB) so that physically contiguous multi-page blocks —
// the property McKernel's memory manager exploits (paper §3.4) — are a real
// allocator outcome here, not an assumption.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.hpp"
#include "src/mem/types.hpp"

namespace pd::mem {

/// Binary buddy allocator over one contiguous physical range.
class BuddyAllocator {
 public:
  static constexpr int kMinOrder = 12;  // 4 KiB
  static constexpr int kMaxOrder = 30;  // 1 GiB

  /// `base` and `size` must be 4 KiB aligned; size need not be a power of 2.
  BuddyAllocator(PhysAddr base, std::uint64_t size);

  /// Allocate a block of exactly 2^order bytes, naturally aligned.
  Result<PhysAddr> alloc_order(int order);

  /// Allocate the smallest block covering `bytes`.
  Result<PhysAddr> alloc(std::uint64_t bytes);

  /// Free a block previously returned by alloc/alloc_order.
  void free(PhysAddr addr, int order);
  void free_bytes(PhysAddr addr, std::uint64_t bytes) { free(addr, order_for(bytes)); }

  static int order_for(std::uint64_t bytes);

  std::uint64_t free_bytes_total() const { return free_total_; }
  std::uint64_t capacity() const { return capacity_; }
  PhysAddr base() const { return base_; }
  bool contains(PhysAddr addr) const { return addr >= base_ && addr < base_ + span_; }

 private:
  struct FreeBlock {
    PhysAddr addr;
  };

  std::optional<PhysAddr> take_block(int order);
  void insert_block(int order, PhysAddr addr);
  bool remove_block(int order, PhysAddr addr);

  PhysAddr base_;
  std::uint64_t span_;      // aligned span the buddy math runs over
  std::uint64_t capacity_;  // usable bytes handed to free lists
  std::uint64_t free_total_ = 0;
  std::vector<std::vector<PhysAddr>> free_lists_;  // index: order - kMinOrder
};

/// One NUMA domain.
struct NumaDomain {
  std::string name;
  MemKind kind;
  BuddyAllocator allocator;
};

/// The node's physical memory map.
class PhysMap {
 public:
  /// KNL-ish default: `numa_per_kind` domains each of MCDRAM and DDR.
  static PhysMap knl(std::uint64_t mcdram_bytes, std::uint64_t ddr_bytes, int numa_per_kind);

  void add_domain(std::string name, MemKind kind, PhysAddr base, std::uint64_t size);

  /// Allocate `bytes` (rounded to the covering power of two) preferring
  /// `kind`, falling back to the other kind when exhausted (the paper's
  /// "prioritize MCDRAM, fall back to DRAM" policy).
  Result<PhysAddr> alloc(std::uint64_t bytes, MemKind preferred);

  /// NUMA-aware form: try the home domain first (a socket's near
  /// partition), then every other domain of the same kind, then anything —
  /// the graceful far-fallback the kheap partitions follow. `home_domain`
  /// indexes `domain()`.
  Result<PhysAddr> alloc_near(std::uint64_t bytes, std::size_t home_domain);

  void free(PhysAddr addr, std::uint64_t bytes);

  /// Domain holding `addr` (placement introspection: which socket a block
  /// actually landed on after alloc_near's fallback walk). nullopt for an
  /// address outside every domain.
  std::optional<std::size_t> domain_of(PhysAddr addr) const;

  std::size_t domain_count() const { return domains_.size(); }
  const NumaDomain& domain(std::size_t i) const { return domains_[i]; }
  std::uint64_t free_bytes(MemKind kind) const;

 private:
  std::vector<NumaDomain> domains_;
  std::size_t next_preferred_ = 0;  // round-robin within preferred kind
};

}  // namespace pd::mem
