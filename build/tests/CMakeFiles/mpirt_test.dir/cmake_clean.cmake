file(REMOVE_RECURSE
  "CMakeFiles/mpirt_test.dir/mpirt_test.cpp.o"
  "CMakeFiles/mpirt_test.dir/mpirt_test.cpp.o.d"
  "mpirt_test"
  "mpirt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpirt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
