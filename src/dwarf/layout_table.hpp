// Compiled-in structure layout tables, shared by every simulated driver.
//
// A driver's internal structures live as raw byte images in the Linux
// kernel heap; the driver itself reads them through a table of
// (name, offset, size) rows — its "headers". Each driver versions its table
// like vendor releases (fields move between versions), ships the same
// information as DWARF debug info in its module binary, and the PicoDriver
// side re-learns the offsets from that binary alone (§3.2).
//
// These primitives are driver-agnostic: the HFI1 table (src/hfi/layouts)
// and the pd-doom table (src/doom/layouts) both build on them, so adding a
// device class never re-implements field lookup, image access, or the
// version-shift machinery.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pd::dwarf {

struct FieldDef {
  std::string name;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::string type_name;  // for debug-info emission
};

struct StructDef {
  std::string name;
  std::uint64_t byte_size = 0;
  std::vector<FieldDef> fields;

  const FieldDef* field(const std::string& fname) const;
};

/// Per-version padding shift, emulating vendor releases that grow or move
/// fields. Keyed by struct name; added to every field offset at or beyond
/// `from_offset` (and to the struct size).
struct VersionShift {
  std::string struct_name;
  std::uint64_t from_offset;
  std::uint64_t delta;
};

/// Apply a release's shifts to a baseline table. Embedded-struct fields
/// (type_name "struct X") inherit the possibly-grown size of their type
/// afterwards, so containers stay consistent with what they embed.
void apply_shifts(std::vector<StructDef>& structs, const std::vector<VersionShift>& shifts);

/// Typed accessor over a raw structure image using a layout table — the
/// driver's own (compiled-in) view of its structures.
class StructImage {
 public:
  StructImage() = default;
  StructImage(std::span<std::uint8_t> bytes, const StructDef* def) : bytes_(bytes), def_(def) {}

  bool valid() const { return def_ != nullptr && bytes_.size() >= def_->byte_size; }

  template <typename T>
  T read(const std::string& field) const {
    const FieldDef* f = def_->field(field);
    T value{};
    if (f == nullptr || f->size != sizeof(T) || f->offset + f->size > bytes_.size()) return value;
    __builtin_memcpy(&value, bytes_.data() + f->offset, sizeof(T));
    return value;
  }

  template <typename T>
  bool write(const std::string& field, T value) {
    const FieldDef* f = def_->field(field);
    if (f == nullptr || f->size != sizeof(T) || f->offset + f->size > bytes_.size()) return false;
    __builtin_memcpy(bytes_.data() + f->offset, &value, sizeof(T));
    return true;
  }

 private:
  std::span<std::uint8_t> bytes_;
  const StructDef* def_ = nullptr;
};

}  // namespace pd::dwarf
