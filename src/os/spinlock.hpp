// Cross-kernel shared spin-lock (paper §3.3).
//
// The HFI driver guards each SDMA engine with a spin-lock. Under
// PicoDriver, the *same lock word* is taken from Linux (offloaded slow
// path, IRQ completion) and from McKernel (fast path) — legal because the
// two kernels share cache-coherent memory and adopted the same lock
// implementation. The model enforces the paper's compatibility requirement
// through the ABI tag and provides FIFO acquisition with contention
// statistics, so cross-kernel serialization on a driver lock is a real,
// measurable effect rather than a constant.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/sim/engine.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"

namespace pd::os {

class SharedSpinlock {
 public:
  /// `abi`: the lock implementation identifier; both kernels must agree
  /// (LinuxKernel::spinlock_abi() / McKernel::spinlock_abi()).
  SharedSpinlock(sim::Engine& engine, std::string abi, Dur uncontended_cost)
      : engine_(engine), res_(engine, 1), abi_(std::move(abi)),
        uncontended_cost_(uncontended_cost) {}

  const std::string& abi() const { return abi_; }

  /// FIFO (ticket-lock) acquisition. Contended acquisitions burn the wait
  /// as spinning (the McKernel side cannot sleep: Linux could not send a
  /// wake-up across the kernel boundary — §3.3).
  sim::Task<> acquire() {
    ++acquisitions_;
    const Time queued = engine_.now();
    if (res_.available() == 0) ++contended_;
    co_await res_.acquire();
    spin_time_ += engine_.now() - queued;
    co_await engine_.delay(uncontended_cost_);
  }

  void release() { res_.release(); }

  bool locked() const { return res_.available() == 0; }
  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t contended_acquisitions() const { return contended_; }
  double total_spin_us() const { return to_us(spin_time_); }

 private:
  sim::Engine& engine_;
  sim::Resource res_;
  std::string abi_;
  Dur uncontended_cost_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contended_ = 0;
  Dur spin_time_ = 0;
};

}  // namespace pd::os
