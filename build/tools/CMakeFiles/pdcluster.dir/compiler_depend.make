# Empty compiler generated dependencies file for pdcluster.
# This may be replaced when dependencies are built.
