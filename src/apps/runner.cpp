#include "src/apps/runner.hpp"

namespace pd::apps {

RunOutcome run_app(const mpirt::ClusterOptions& copts, const mpirt::WorldOptions& wopts,
                   const std::function<sim::Task<>(mpirt::Rank&)>& body) {
  mpirt::Cluster cluster(copts);
  mpirt::MpiWorld world(cluster, wopts);
  world.run(body);

  RunOutcome out;
  out.runtime_sec = to_sec(world.max_solve());
  out.total_sec = to_sec(world.max_runtime());
  out.mpi = world.stats_table();
  out.kernel = cluster.app_kernel_profile();
  Samples queueing;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    out.sdma_descriptors += cluster.node(n).device->total_descriptors();
    out.sdma_bytes += cluster.node(n).device->total_descriptor_bytes();
    if (cluster.node(n).ihk) {
      out.offloads += cluster.node(n).ihk->offload_count();
      queueing.merge(cluster.node(n).ihk->queueing_samples());
    }
  }
  out.offload_queue = ikc::summarize_queueing(queueing);
  return out;
}

}  // namespace pd::apps
