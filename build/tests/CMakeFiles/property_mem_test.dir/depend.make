# Empty dependencies file for property_mem_test.
# This may be replaced when dependencies are built.
