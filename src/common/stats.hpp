// Small statistics helpers used by the profilers and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pd {

/// Streaming accumulator: count / sum / min / max / mean / variance
/// (Welford). Cheap enough to keep one per syscall number per CPU.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double m2_ = 0.0;
  double mean_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample container with percentile queries; used for latency distributions
/// in the micro-benches. Stores all samples — fine at bench scale.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  /// Pool another node's samples (cluster-wide percentile summaries).
  void merge(const Samples& other) { xs_.insert(xs_.end(), other.xs_.begin(), other.xs_.end()); }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  /// p in [0,100]; nearest-rank on the sorted copy.
  double percentile(double p) const;

 private:
  std::vector<double> xs_;
};

/// Fixed-width text table writer for bench output (paper-style rows).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style %.2f formatting helper used by the bench printers.
std::string format_double(double v, int decimals);

}  // namespace pd
