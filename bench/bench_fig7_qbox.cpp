// Figure 7: QBOX weak scaling (32 ranks/node, 4..256 nodes), relative to
// Linux.
//
// Paper result: plain McKernel stays roughly at par with Linux (QBOX was
// not crushed by offloading), while McKernel+HFI1 delivers the paper's
// headline: up to ~30 % over Linux.
#include "bench/app_figure.hpp"

int main() {
  using namespace pd;
  using namespace pd::apps;

  bench::print_banner("Figure 7 — QBOX weak scaling (32 ranks/node, ≥4 nodes)",
                      "McKernel ≈ Linux; McKernel+HFI1 up to +30%");
  QboxParams qbox;
  bench::AppFigureSpec spec{"QBOX", kQboxRpn, 4ull << 20,
                            [qbox](mpirt::Rank& r) { return qbox_rank(r, qbox); }};
  bench::print_app_figure(spec, bench::node_axis(256, /*min_nodes=*/4));
  return 0;
}
