// Micro-bench: the allocation-free fast path's host-side memory pipeline.
//
// Steady-state SDMA sends of the *same* pinned buffer pay, per call:
//   baseline   — a full page-table walk into a freshly allocated extent
//                vector, a freshly grown descriptor vector, and a
//                map-per-block kmalloc/kfree of the 192-byte completion
//                metadata (the pre-slab heap);
//   optimized  — an ExtentCache hit (no walk), descriptor build into an
//                arena-recycled vector, and a slab-magazine kmalloc/kfree.
//
// The bench measures both pipelines on a repeated-buffer workload and
// counts real heap allocations per call via a replaced operator new, then
// emits BENCH_fastpath.json. It fails (non-zero exit) if the optimized
// pipeline is less than 2x faster or still allocates in steady state —
// the acceptance bar for the fast-path cache work.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench/bench_common.hpp"
#include "src/common/units.hpp"
#include "src/mem/address_space.hpp"
#include "src/mem/extent_cache.hpp"
#include "src/mem/kheap.hpp"
#include "src/mem/phys.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// Count every host heap allocation the pipelines make. Replacing the
// global allocation functions in the binary is the only way to see the
// vector/map/unique_ptr traffic without instrumenting each container.
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pd;
using namespace pd::mem;

constexpr std::uint64_t kBufBytes = 256_KiB;
constexpr std::uint64_t kDescCap = 10240;  // HFI SDMA descriptor limit
constexpr int kLwkCpu = 60;
constexpr int kLinuxCpu = 0;

struct PipelineResult {
  double ops_per_sec = 0;
  double allocs_per_op = 0;   // steady state, after warmup
  std::uint64_t ops = 0;
};

struct Descriptor {  // stand-in for hw::SdmaDescriptor (pa, len)
  PhysAddr pa;
  std::uint32_t len;
};

/// One send's host-side work, baseline flavour: allocating walk, fresh
/// descriptor vector, map-per-block completion metadata.
std::uint64_t baseline_op(const AddressSpace& as, VirtAddr va, KernelHeap& heap) {
  auto extents = as.physical_extents(va, kBufBytes, kDescCap);
  if (!extents.ok()) std::abort();
  std::vector<Descriptor> descs;
  for (const auto& e : *extents)
    descs.push_back({e.pa, static_cast<std::uint32_t>(e.len)});
  auto meta = heap.kmalloc(192, kLwkCpu);
  if (!meta.ok()) std::abort();
  if (!heap.kfree(*meta, kLinuxCpu).ok()) std::abort();  // completion IRQ side
  (void)heap.drain_remote_frees(kLwkCpu);                // next scheduler tick
  return descs.size();
}

/// Same work, optimized flavour: extent-cache lookup, arena-recycled
/// descriptor vector, slab-magazine metadata.
std::uint64_t cached_op(const AddressSpace& as, VirtAddr va, ExtentCache& cache,
                        std::vector<Descriptor>& descs, KernelHeap& heap) {
  auto extents = cache.lookup(as, va, kBufBytes, kDescCap);
  if (!extents.ok()) std::abort();
  descs.clear();
  for (const auto& e : *extents)
    descs.push_back({e.pa, static_cast<std::uint32_t>(e.len)});
  auto meta = heap.kmalloc(192, kLwkCpu);
  if (!meta.ok()) std::abort();
  if (!heap.kfree(*meta, kLinuxCpu).ok()) std::abort();
  (void)heap.drain_remote_frees(kLwkCpu);
  return descs.size();
}

/// Mixed-lifetime workload (the thrash case PR 1's cache collapsed on): one
/// persistent MPI window re-sent every iteration while small transient
/// buffers churn through mmap → send → munmap around it. "Precise" is the
/// current design (unmap-interval log + size-aware eviction); "coarse"
/// emulates the PR-1 cache (log capacity 0 → every munmap invalidates the
/// whole space; pure LRU). The figure of merit is the persistent window's
/// hit rate — precise must keep it, coarse collapses it to ~0.
struct MixedResult {
  double window_hit_rate = 0;
  double ops_per_sec = 0;  // full iterations (1 window send + churn) per sec
  std::uint64_t window_hits = 0;
  std::uint64_t range_invalidations = 0;
  std::uint64_t generation_overflows = 0;
  std::uint64_t evictions = 0;
};

MixedResult run_mixed(bool precise, std::uint64_t iters) {
  constexpr int kTransientsPerIter = 10;
  constexpr std::uint64_t kTransientBytes = 8_KiB;

  PhysMap phys = PhysMap::knl(512ull << 20, 1ull << 30, 2);
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, 0x2000'0000ull, 43);
  as.set_unmap_log_capacity(precise ? AddressSpace::kDefaultUnmapLogCapacity : 0);
  ExtentCache cache(8, precise ? ExtentCache::EvictionPolicy::size_aware
                               : ExtentCache::EvictionPolicy::lru);

  auto win = as.mmap_anonymous(kBufBytes, kProtRead | kProtWrite);
  if (!win.ok()) std::abort();

  MixedResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    ExtentCache::Outcome outcome = ExtentCache::Outcome::miss;
    auto extents = cache.lookup(as, *win, kBufBytes, kDescCap, &outcome);
    if (!extents.ok()) std::abort();
    if (outcome == ExtentCache::Outcome::hit) ++r.window_hits;
    for (int t = 0; t < kTransientsPerIter; ++t) {
      auto tva = as.mmap_anonymous(kTransientBytes, kProtRead | kProtWrite);
      if (!tva.ok()) std::abort();
      auto te = cache.lookup(as, *tva, kTransientBytes, kDescCap);
      if (!te.ok()) std::abort();
      if (!as.munmap(*tva, kTransientBytes).ok()) std::abort();
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  r.window_hit_rate = static_cast<double>(r.window_hits) / static_cast<double>(iters);
  r.ops_per_sec = static_cast<double>(iters) / (secs > 0 ? secs : 1e-9);
  r.range_invalidations = cache.stats().range_invalidations;
  r.generation_overflows = cache.stats().generation_overflows;
  r.evictions = cache.stats().evictions;
  return r;
}

/// Cross-socket SDMA-completion-heavy workload: one LWK owner core per SNC
/// quadrant sends a burst every iteration, and every completion IRQ lands
/// on a quadrant-0 Linux service CPU — so three of the four owners' drains
/// pull remote-socket blocks each tick. "flat" is the placement-ignorant
/// heap (per-block cross-socket accounting, socket-0 arenas); "numa" places
/// each refill in the owner's near partition and drains one batch per
/// source socket. The figure of merit is cross-socket reclaim events per
/// iteration at an unchanged (zero) steady-state host-allocation rate.
struct NumaResult {
  double iters_per_sec = 0;
  double heap_allocs_per_iter = 0;       // steady state, after warmup
  double cross_drains_per_iter = 0;
  std::uint64_t blocks_reclaimed = 0;    // timed region
  std::uint64_t near_allocs = 0;         // whole run (cold path only)
  std::uint64_t far_allocs = 0;
};

NumaResult run_numa(bool numa_aware, std::uint64_t iters) {
  constexpr int kOwners[] = {8, 25, 42, 59};  // one per KNL quadrant
  constexpr int kIrqCpus[] = {0, 1, 2, 3};    // all quadrant 0
  constexpr int kBlocksPerOwner = 8;          // one completion burst
  constexpr std::uint64_t kWarmup = 32;

  const NumaTopology topo = NumaTopology::blocked(68, 4);
  KernelHeap heap({kOwners[0], kOwners[1], kOwners[2], kOwners[3]},
                  ForeignFreePolicy::remote_queue, topo, PartitionBudget{},
                  numa_aware ? PlacementPolicy::numa_aware : PlacementPolicy::flat);

  NumaResult r;
  PhysAddr blocks[4][kBlocksPerOwner];
  std::uint64_t allocs_at_t0 = 0, cross_at_t0 = 0, reclaimed = 0, reclaimed_at_t0 = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t it = 0; it < kWarmup + iters; ++it) {
    if (it == kWarmup) {
      allocs_at_t0 = g_heap_allocs.load(std::memory_order_relaxed);
      cross_at_t0 = heap.stats().cross_socket_drains;
      reclaimed_at_t0 = reclaimed;
      t0 = std::chrono::steady_clock::now();
    }
    for (int o = 0; o < 4; ++o)
      for (int b = 0; b < kBlocksPerOwner; ++b) {
        auto a = heap.kmalloc(192, kOwners[o]);
        if (!a.ok()) std::abort();
        blocks[o][b] = *a;
      }
    for (int o = 0; o < 4; ++o)
      for (int b = 0; b < kBlocksPerOwner; ++b)
        if (!heap.kfree(blocks[o][b], kIrqCpus[(o + b) % 4]).ok()) std::abort();
    for (int o = 0; o < 4; ++o) reclaimed += heap.drain_remote_frees(kOwners[o]);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  r.iters_per_sec = static_cast<double>(iters) / (secs > 0 ? secs : 1e-9);
  r.heap_allocs_per_iter =
      static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed) - allocs_at_t0) /
      static_cast<double>(iters);
  r.cross_drains_per_iter =
      static_cast<double>(heap.stats().cross_socket_drains - cross_at_t0) /
      static_cast<double>(iters);
  r.blocks_reclaimed = reclaimed - reclaimed_at_t0;
  r.near_allocs = heap.stats().near_allocs;
  r.far_allocs = heap.stats().far_allocs;
  return r;
}

template <typename Op>
PipelineResult run_pipeline(std::uint64_t warmup, std::uint64_t iters, Op&& op) {
  PipelineResult r;
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < warmup; ++i) sink += op();
  const std::uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) sink += op();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs_after = g_heap_allocs.load(std::memory_order_relaxed);
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  r.ops = iters;
  r.ops_per_sec = static_cast<double>(iters) / (secs > 0 ? secs : 1e-9);
  r.allocs_per_op =
      static_cast<double>(allocs_after - allocs_before) / static_cast<double>(iters);
  if (sink == 0) std::abort();  // keep the work observable
  return r;
}

}  // namespace

int main() {
  using pd::bench::quick_mode;
  pd::bench::print_banner(
      "Fast-path memory pipeline — extent cache + slab heap + descriptor arena",
      "repeated sends of a pinned buffer should pay the page-table walk once");

  const std::uint64_t iters = quick_mode() ? 20'000 : 200'000;
  const std::uint64_t warmup = 1'000;

  PhysMap phys = PhysMap::knl(512ull << 20, 1ull << 30, 2);
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, 0x2000'0000ull, 42);
  auto va = as.mmap_anonymous(kBufBytes, kProtRead | kProtWrite);
  if (!va.ok()) return 1;

  // Baseline: the pre-slab map-per-block heap (slab magazines disabled).
  KernelHeap old_heap({kLwkCpu}, ForeignFreePolicy::remote_queue,
                      0x0000'00F0'0000'0000ull, /*slab_enabled=*/false);
  PipelineResult base = run_pipeline(
      warmup, iters, [&] { return baseline_op(as, *va, old_heap); });

  // Optimized: extent cache + arena descriptor buffer + slab heap.
  KernelHeap slab_heap({kLwkCpu}, ForeignFreePolicy::remote_queue);
  ExtentCache cache;
  std::vector<Descriptor> arena;
  PipelineResult fast = run_pipeline(
      warmup, iters, [&] { return cached_op(as, *va, cache, arena, slab_heap); });

  // Sanity: the cached extents must match a fresh walk bit for bit.
  auto truth = as.physical_extents(*va, kBufBytes, kDescCap);
  auto cached = cache.lookup(as, *va, kBufBytes, kDescCap);
  if (!truth.ok() || !cached.ok() || truth->size() != cached->size()) return 1;
  for (std::size_t i = 0; i < truth->size(); ++i)
    if ((*truth)[i].pa != (*cached)[i].pa || (*truth)[i].len != (*cached)[i].len) return 1;

  // Mixed-lifetime workload: persistent window + transient churn.
  const std::uint64_t mixed_iters = quick_mode() ? 300 : 2'000;
  MixedResult coarse = run_mixed(/*precise=*/false, mixed_iters);
  MixedResult precise = run_mixed(/*precise=*/true, mixed_iters);

  // Cross-socket completion workload: flat vs NUMA-aware placement/drain.
  const std::uint64_t numa_iters = quick_mode() ? 2'000 : 20'000;
  NumaResult flat_numa = run_numa(/*numa_aware=*/false, numa_iters);
  NumaResult numa = run_numa(/*numa_aware=*/true, numa_iters);

  // IKC transport: the paper's 64-ranks-on-4-service-CPUs squeeze through
  // the legacy direct path vs the batched ring transport (simulated time).
  const int ikc_per_rank = quick_mode() ? 24 : 96;
  pd::os::Config ikc_cfg;
  ikc_cfg.ikc_mode = pd::os::IkcMode::direct;
  const auto ikc_legacy =
      pd::bench::run_offload_storm(ikc_cfg, 64, ikc_per_rank, pd::from_us(3), pd::from_us(20));
  // PR-4 ring shape: batched request rings, but every completion still pays
  // its own latch wakeup. This is the baseline the reply ring must beat.
  ikc_cfg.ikc_mode = pd::os::IkcMode::ring;
  ikc_cfg.ikc_reply_mode = pd::os::ReplyMode::latch;
  const auto ikc_ring =
      pd::bench::run_offload_storm(ikc_cfg, 64, ikc_per_rank, pd::from_us(3), pd::from_us(20));
  // §8.4: shared-memory reply rings + adaptive batching (the defaults).
  ikc_cfg.ikc_reply_mode = pd::os::ReplyMode::ring;
  const auto ikc_reply =
      pd::bench::run_offload_storm(ikc_cfg, 64, ikc_per_rank, pd::from_us(3), pd::from_us(20));
  const double wakeups_saved =
      ikc_ring.wakeups_per_offload - ikc_reply.wakeups_per_offload;

  // Multi-tenant overload ladder (§8.6): 1 → 4096 tenants sharing the same
  // 4 service CPUs, each tenant submitting from its own ring. Half the
  // jobs are offload-heavy (8 saturating streams), half fast-path-ish
  // (2 streams with local work between calls) — a 4:1 offered-load skew
  // the weighted-fair drain must flatten to equal per-tenant service
  // shares. Both profiles keep ≥2 requests in flight so every tenant stays
  // backlogged at the deep rungs: with a single stream a tenant's cycle
  // serializes queueing wait + reply delivery, and the un-hidden reply
  // latency caps its *demand* below an equal share — a Little's-law limit
  // no drain scheduler can compensate, and not what Jain's index is meant
  // to measure here.
  // Tenants' rings stripe round-robin over the service loops (pinning off),
  // so alternating heavy/light in *blocks of loops_n* lands an even mix of
  // both profiles on every loop — cross-loop balance is the submitters' job
  // (ring placement), per-loop fairness the drain scheduler's.
  auto mixed_specs = [](int jobs) {
    std::vector<pd::bench::JobSpec> specs(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) {
      if ((j / 4) % 2 == 1) {
        specs[static_cast<std::size_t>(j)].submitters = 8;
        specs[static_cast<std::size_t>(j)].gap = pd::from_us(0);
      } else {
        specs[static_cast<std::size_t>(j)].submitters = 2;
        specs[static_cast<std::size_t>(j)].gap = pd::from_us(2);
      }
    }
    return specs;
  };
  auto rung_horizon = [](int jobs) {
    // Sized so every tenant completes enough window ops (~20) that Jain's
    // index measures the scheduler, not claim quantization noise.
    const pd::Dur per_job = quick_mode() ? pd::from_us(48) : pd::from_us(64);
    return std::max(pd::from_ms(2.0), static_cast<pd::Dur>(jobs) * per_job);
  };
  struct Rung {
    int jobs;
    pd::bench::FairnessResult r;
  };
  const std::vector<int> rung_sizes = quick_mode()
                                          ? std::vector<int>{1, 16, 256, 1024}
                                          : std::vector<int>{1, 4, 16, 64, 256, 1024, 4096};
  std::vector<Rung> rungs;
  for (const int jobs : rung_sizes) {
    pd::os::Config qcfg;
    qcfg.ikc_mode = pd::os::IkcMode::ring;
    qcfg.ikc_channels = jobs;
    qcfg.ikc_numa_pin = false;
    // Sustained overload is the point of the ladder: queueing at the deep
    // rungs legitimately reaches tens of ms, so park the residency watchdog
    // far above it — otherwise the robustness ladder (deadline → retry →
    // degrade) declares the transport dead and the rung measures the direct
    // fallback instead of the fair drain.
    qcfg.ikc_deadline = pd::from_ms(500.0);
    rungs.push_back(
        {jobs, pd::bench::run_fairness_storm(qcfg, mixed_specs(jobs), rung_horizon(jobs))});
  }
  // Reference: the PR-4 strict class/channel drain on the same 64-tenant
  // skewed workload — per-ring FIFO hands offload-heavy tenants their full
  // 4:1 offered share, which is the unfairness the vtime scheduler removes.
  pd::os::Config strict_cfg;
  strict_cfg.ikc_mode = pd::os::IkcMode::ring;
  strict_cfg.ikc_channels = 64;
  strict_cfg.ikc_numa_pin = false;
  strict_cfg.ikc_deadline = pd::from_ms(500.0);
  strict_cfg.ikc_fair_drain = false;
  const auto strict64 =
      pd::bench::run_fairness_storm(strict_cfg, mixed_specs(64), rung_horizon(64));

  // Misbehaving tenant: job 0 floods its channel with 12 saturating streams
  // while 15 victims run the normal profile. In-flight credits (2/job)
  // throttle the flooder with EAGAIN; the fair drain keeps the victims' tail
  // queueing within 2x of the same run with no flooder at all.
  constexpr int kFloodJobs = 16;
  auto flood_specs = [&](bool with_flooder) {
    std::vector<pd::bench::JobSpec> specs(kFloodJobs);
    for (int j = 0; j < kFloodJobs; ++j) {
      specs[static_cast<std::size_t>(j)].submitters = (j == 0) ? (with_flooder ? 12 : 0) : 1;
      specs[static_cast<std::size_t>(j)].gap = (j == 0) ? pd::from_us(0) : pd::from_us(2);
    }
    return specs;
  };
  pd::os::Config flood_cfg;
  flood_cfg.ikc_mode = pd::os::IkcMode::ring;
  flood_cfg.ikc_channels = kFloodJobs;
  flood_cfg.ikc_numa_pin = false;
  flood_cfg.ikc_job_credits = 2;
  const pd::Dur flood_horizon = quick_mode() ? pd::from_ms(4.0) : pd::from_ms(10.0);
  const auto flood_base =
      pd::bench::run_fairness_storm(flood_cfg, flood_specs(false), flood_horizon);
  const auto flood_run =
      pd::bench::run_fairness_storm(flood_cfg, flood_specs(true), flood_horizon);
  auto victim_worst_p95 = [](const pd::bench::FairnessResult& r) {
    double worst = 0;
    for (const auto& o : r.jobs)
      if (o.job != 0 && o.queue.p95_us > worst) worst = o.queue.p95_us;
    return worst;
  };
  auto victim_jain = [](const pd::bench::FairnessResult& r) {
    std::vector<double> xs;
    for (const auto& o : r.jobs)
      if (o.job != 0) xs.push_back(static_cast<double>(o.completed));
    return pd::bench::jain_index(xs);
  };
  const double flood_victim_p95 = victim_worst_p95(flood_run);
  const double base_victim_p95 = victim_worst_p95(flood_base);
  const double victim_p95_ratio =
      base_victim_p95 > 0 ? flood_victim_p95 / base_victim_p95 : 0.0;
  const auto& flooder = flood_run.jobs[0];

  // Elastic repartitioning (§8.7): 64 streams over 4 service loops, then a
  // live shrink to 2 (both retires back to back), a shrunken steady-state
  // window, a grow back to 4, and a restored window. Per-window round-trip
  // p95 shows the handover cost in-band; the skip counters prove the
  // quiesce lost nothing (a stale/dead skip would mean a queued request was
  // dropped on the floor during the handover instead of drained).
  pd::os::Config elastic_cfg;
  elastic_cfg.ikc_mode = pd::os::IkcMode::ring;
  elastic_cfg.ikc_channels = 32;
  elastic_cfg.ikc_numa_pin = false;
  elastic_cfg.ikc_deadline = pd::from_ms(500.0);
  const pd::Dur elastic_window = quick_mode() ? pd::from_us(400) : pd::from_ms(1.0);
  const auto elastic = pd::bench::run_elastic_storm(
      elastic_cfg, 64, pd::from_us(3), pd::from_us(2), elastic_window, /*shrink_by=*/2);

  const double speedup = fast.ops_per_sec / base.ops_per_sec;
  std::printf("  workload: %llu sends of the same pinned %llu KiB buffer\n",
              static_cast<unsigned long long>(iters),
              static_cast<unsigned long long>(kBufBytes >> 10));
  std::printf("  baseline : %12.0f ops/s, %5.2f heap allocs/op\n", base.ops_per_sec,
              base.allocs_per_op);
  std::printf("  optimized: %12.0f ops/s, %5.2f heap allocs/op\n", fast.ops_per_sec,
              fast.allocs_per_op);
  std::printf("  speedup  : %.1fx  (cache: %llu hits / %llu misses; heap: %llu slab "
              "reuses, %llu host allocs)\n",
              speedup, static_cast<unsigned long long>(cache.stats().hits),
              static_cast<unsigned long long>(cache.stats().misses),
              static_cast<unsigned long long>(slab_heap.stats().slab_reuses),
              static_cast<unsigned long long>(slab_heap.stats().host_allocs));
  std::printf("  mixed-lifetime (persistent window + %llu iters of transient churn):\n",
              static_cast<unsigned long long>(mixed_iters));
  std::printf("    coarse (PR-1: whole-space invalidation, LRU): %5.1f%% window hits, "
              "%llu overflow invalidations, %llu evictions\n",
              100.0 * coarse.window_hit_rate,
              static_cast<unsigned long long>(coarse.generation_overflows),
              static_cast<unsigned long long>(coarse.evictions));
  std::printf("    precise (unmap log + size-aware eviction):    %5.1f%% window hits, "
              "%llu range invalidations, %llu evictions\n",
              100.0 * precise.window_hit_rate,
              static_cast<unsigned long long>(precise.range_invalidations),
              static_cast<unsigned long long>(precise.evictions));
  std::printf("  cross-socket completions (4 owners x 8 blocks/iter, IRQs on socket 0):\n");
  std::printf("    flat placement : %6.2f cross-socket drains/iter, %.3f heap allocs/iter, "
              "%llu near / %llu far\n",
              flat_numa.cross_drains_per_iter, flat_numa.heap_allocs_per_iter,
              static_cast<unsigned long long>(flat_numa.near_allocs),
              static_cast<unsigned long long>(flat_numa.far_allocs));
  std::printf("    numa-aware     : %6.2f cross-socket drains/iter, %.3f heap allocs/iter, "
              "%llu near / %llu far\n",
              numa.cross_drains_per_iter, numa.heap_allocs_per_iter,
              static_cast<unsigned long long>(numa.near_allocs),
              static_cast<unsigned long long>(numa.far_allocs));
  std::printf("  ikc batch (64 ranks / 4 service CPUs, simulated time):\n");
  std::printf("    legacy direct  : %8.1f offloads/ms, queue p95 %8.1f us\n",
              ikc_legacy.offloads_per_ms, ikc_legacy.queue.p95_us);
  std::printf("    ring batched   : %8.1f offloads/ms, queue p95 %8.1f us "
              "(degraded %llu, timeouts %llu)\n",
              ikc_ring.offloads_per_ms, ikc_ring.queue.p95_us,
              static_cast<unsigned long long>(ikc_ring.degraded),
              static_cast<unsigned long long>(ikc_ring.timeouts));
  std::printf("  ikc reply ring (same squeeze, wakeups per offload round trip):\n");
  std::printf("    latch replies  : %5.2f wakeups/op (%llu doorbells + %llu reply), "
              "queue p95 %8.1f us\n",
              ikc_ring.wakeups_per_offload,
              static_cast<unsigned long long>(ikc_ring.doorbells),
              static_cast<unsigned long long>(ikc_ring.reply_wakeups),
              ikc_ring.queue.p95_us);
  std::printf("    reply rings    : %5.2f wakeups/op (%llu doorbells + %llu reply), "
              "queue p95 %8.1f us (adaptive grow %llu / shrink %llu)\n",
              ikc_reply.wakeups_per_offload,
              static_cast<unsigned long long>(ikc_reply.doorbells),
              static_cast<unsigned long long>(ikc_reply.reply_wakeups),
              ikc_reply.queue.p95_us,
              static_cast<unsigned long long>(ikc_reply.adaptive_grow),
              static_cast<unsigned long long>(ikc_reply.adaptive_shrink));
  std::printf("    saved          : %5.2f wakeups per offload round trip\n", wakeups_saved);
  std::printf("  overload ladder (mixed 4:1 offered-load skew, weighted-fair drain):\n");
  for (const auto& rung : rungs) {
    double worst_p95 = 0, worst_max = 0;
    std::uint64_t eagain_total = 0;
    for (const auto& o : rung.r.jobs) {
      if (o.queue.p95_us > worst_p95) worst_p95 = o.queue.p95_us;
      if (o.queue.max_us > worst_max) worst_max = o.queue.max_us;
      eagain_total += o.eagain;
    }
    std::printf("    %5d jobs: jain %.4f, %8llu completed in %7.1f ms, "
                "worst p95 %9.1f us\n",
                rung.jobs, rung.r.jain,
                static_cast<unsigned long long>(rung.r.completed_total), rung.r.window_ms,
                worst_p95);
    (void)eagain_total;
    (void)worst_max;
    if (std::getenv("PD_QOS_DEBUG") != nullptr) {
      double lmin = 1e18, lmax = 0, lsum = 0, hmin = 1e18, hmax = 0, hsum = 0;
      int ln = 0, hn = 0;
      for (const auto& o : rung.r.jobs) {
        const double c = static_cast<double>(o.completed);
        if ((o.job / 4) % 2 == 1) {
          hmin = std::min(hmin, c); hmax = std::max(hmax, c); hsum += c; ++hn;
        } else {
          lmin = std::min(lmin, c); lmax = std::max(lmax, c); lsum += c; ++ln;
        }
      }
      if (ln > 0)
        std::printf("      light: n=%d min %.0f mean %.1f max %.0f\n", ln, lmin,
                    lsum / ln, lmax);
      if (hn > 0)
        std::printf("      heavy: n=%d min %.0f mean %.1f max %.0f\n", hn, hmin,
                    hsum / hn, hmax);
      {
        double lp50 = 0, lp95 = 0, hp50 = 0, hp95 = 0;
        for (const auto& o : rung.r.jobs) {
          const bool heavy = (o.job / 4) % 2 == 1;
          (heavy ? hp50 : lp50) += o.queue.p50_us;
          (heavy ? hp95 : lp95) += o.queue.p95_us;
        }
        if (ln > 0 && hn > 0)
          std::printf("      queue us (mean of per-job): light p50 %.0f p95 %.0f | "
                      "heavy p50 %.0f p95 %.0f\n",
                      lp50 / ln, lp95 / ln, hp50 / hn, hp95 / hn);
      }
      auto sorted = rung.r.jobs;
      std::sort(sorted.begin(), sorted.end(),
                [](const auto& a, const auto& b) { return a.completed < b.completed; });
      if (sorted.size() > 8) {
        std::printf("      bottom:");
        for (std::size_t i = 0; i < 6; ++i)
          std::printf(" j%u=%llu", sorted[i].job,
                      static_cast<unsigned long long>(sorted[i].completed));
        std::printf("  top:");
        for (std::size_t i = sorted.size() - 6; i < sorted.size(); ++i)
          std::printf(" j%u=%llu", sorted[i].job,
                      static_cast<unsigned long long>(sorted[i].completed));
        std::printf("\n");
        // Window delta vs whole-run per index octile: equal whole-run but
        // skewed window = sweep waves; skewed both = persistent favoritism.
        const std::size_t oct = rung.r.jobs.size() / 8;
        if (oct > 0) {
          std::printf("      octile win/run:");
          for (int o = 0; o < 8; ++o) {
            std::uint64_t win = 0, run = 0;
            for (std::size_t j = oct * o; j < oct * (o + 1); ++j) {
              win += rung.r.jobs[j].completed;
              run += rung.r.jobs[j].queue.count;
            }
            std::printf(" %llu/%llu", static_cast<unsigned long long>(win / oct),
                        static_cast<unsigned long long>(run / oct));
          }
          std::printf("\n");
        }
      }
    }
  }
  std::printf("    64-job strict-drain reference: jain %.4f (fair: see ladder)\n",
              strict64.jain);
  std::printf("  misbehaving tenant (12-stream flooder vs 15 victims, 2 credits/job):\n");
  std::printf("    victim worst p95: %8.1f us with flooder vs %8.1f us without "
              "(ratio %.2f)\n",
              flood_victim_p95, base_victim_p95, victim_p95_ratio);
  std::printf("    flooder: %llu completed, %llu EAGAIN, %llu credit waits; "
              "victim jain %.4f\n",
              static_cast<unsigned long long>(flooder.completed),
              static_cast<unsigned long long>(flooder.eagain),
              static_cast<unsigned long long>(flooder.credit_waits),
              victim_jain(flood_run));
  std::printf("  elastic repartition (64 streams, 4 -> 2 -> 4 service loops):\n");
  std::printf("    p95 us: pre %7.1f | shrink-during %7.1f | shrink-after %7.1f | "
              "grow-during %7.1f | grow-after %7.1f\n",
              elastic.pre_p95_us, elastic.shrink_during_p95_us,
              elastic.shrink_after_p95_us, elastic.grow_during_p95_us,
              elastic.grow_after_p95_us);
  std::printf("    quiesce %.1f us (2 retires), attach %.1f us; "
              "%llu submitted, %llu completed, %llu lost; "
              "timeouts %llu, stale skips %llu, dead skips %llu\n",
              elastic.quiesce_us, elastic.attach_us,
              static_cast<unsigned long long>(elastic.submitted),
              static_cast<unsigned long long>(elastic.completed),
              static_cast<unsigned long long>(elastic.lost),
              static_cast<unsigned long long>(elastic.timeouts),
              static_cast<unsigned long long>(elastic.stale_skips),
              static_cast<unsigned long long>(elastic.dead_skips));

  std::FILE* json = std::fopen("BENCH_fastpath.json", "w");
  if (json == nullptr) return 1;
  std::fprintf(json,
               "{\n"
               "  \"workload\": {\"buffer_bytes\": %llu, \"max_extent_bytes\": %llu, "
               "\"iterations\": %llu, \"quick_mode\": %s},\n"
               "  \"baseline\": {\"ops_per_sec\": %.0f, \"heap_allocs_per_op\": %.3f},\n"
               "  \"optimized\": {\"ops_per_sec\": %.0f, \"heap_allocs_per_op\": %.3f},\n"
               "  \"speedup\": %.2f,\n"
               "  \"extent_cache\": {\"hits\": %llu, \"misses\": %llu, "
               "\"range_invalidations\": %llu, \"generation_overflows\": %llu, "
               "\"evictions\": %llu},\n"
               "  \"slab_heap\": {\"slab_reuses\": %llu, \"slab_recycles\": %llu, "
               "\"host_allocs\": %llu},\n"
               "  \"mixed_lifetime\": {\n"
               "    \"iterations\": %llu, \"transients_per_iteration\": 10,\n"
               "    \"coarse\": {\"window_hit_rate\": %.4f, \"generation_overflows\": %llu, "
               "\"evictions\": %llu, \"iters_per_sec\": %.0f},\n"
               "    \"precise\": {\"window_hit_rate\": %.4f, \"range_invalidations\": %llu, "
               "\"evictions\": %llu, \"iters_per_sec\": %.0f}\n"
               "  },\n"
               "  \"numa_drain\": {\n"
               "    \"iterations\": %llu, \"owners\": 4, \"blocks_per_owner\": 8,\n"
               "    \"flat\": {\"cross_socket_drains_per_iter\": %.2f, "
               "\"heap_allocs_per_iter\": %.3f, \"near_allocs\": %llu, "
               "\"far_allocs\": %llu, \"iters_per_sec\": %.0f},\n"
               "    \"numa_aware\": {\"cross_socket_drains_per_iter\": %.2f, "
               "\"heap_allocs_per_iter\": %.3f, \"near_allocs\": %llu, "
               "\"far_allocs\": %llu, \"iters_per_sec\": %.0f}\n"
               "  },\n"
               "  \"ikc_batch\": {\n"
               "    \"ranks\": 64, \"service_cpus\": 4, \"offloads_per_rank\": %d,\n"
               "    \"legacy\": {\"offloads_per_ms\": %.1f, \"queue_p95_us\": %.1f},\n"
               "    \"ring\": {\"offloads_per_ms\": %.1f, \"queue_p95_us\": %.1f, "
               "\"degraded\": %llu, \"timeouts\": %llu}\n"
               "  },\n"
               "  \"reply_ring\": {\n"
               "    \"ranks\": 64, \"service_cpus\": 4, \"offloads_per_rank\": %d,\n"
               "    \"latch\": {\"wakeups_per_offload\": %.3f, \"doorbells\": %llu, "
               "\"reply_wakeups\": %llu, \"queue_p95_us\": %.1f},\n"
               "    \"ring\": {\"wakeups_per_offload\": %.3f, \"doorbells\": %llu, "
               "\"reply_wakeups\": %llu, \"queue_p95_us\": %.1f, "
               "\"adaptive_grow\": %llu, \"adaptive_shrink\": %llu, "
               "\"remote_drains\": %llu},\n"
               "    \"wakeups_saved_per_offload\": %.3f\n"
               "  },\n",
               static_cast<unsigned long long>(kBufBytes),
               static_cast<unsigned long long>(kDescCap),
               static_cast<unsigned long long>(iters), quick_mode() ? "true" : "false",
               base.ops_per_sec, base.allocs_per_op, fast.ops_per_sec, fast.allocs_per_op,
               speedup, static_cast<unsigned long long>(cache.stats().hits),
               static_cast<unsigned long long>(cache.stats().misses),
               static_cast<unsigned long long>(cache.stats().range_invalidations),
               static_cast<unsigned long long>(cache.stats().generation_overflows),
               static_cast<unsigned long long>(cache.stats().evictions),
               static_cast<unsigned long long>(slab_heap.stats().slab_reuses),
               static_cast<unsigned long long>(slab_heap.stats().slab_recycles),
               static_cast<unsigned long long>(slab_heap.stats().host_allocs),
               static_cast<unsigned long long>(mixed_iters), coarse.window_hit_rate,
               static_cast<unsigned long long>(coarse.generation_overflows),
               static_cast<unsigned long long>(coarse.evictions), coarse.ops_per_sec,
               precise.window_hit_rate,
               static_cast<unsigned long long>(precise.range_invalidations),
               static_cast<unsigned long long>(precise.evictions), precise.ops_per_sec,
               static_cast<unsigned long long>(numa_iters),
               flat_numa.cross_drains_per_iter, flat_numa.heap_allocs_per_iter,
               static_cast<unsigned long long>(flat_numa.near_allocs),
               static_cast<unsigned long long>(flat_numa.far_allocs),
               flat_numa.iters_per_sec, numa.cross_drains_per_iter,
               numa.heap_allocs_per_iter,
               static_cast<unsigned long long>(numa.near_allocs),
               static_cast<unsigned long long>(numa.far_allocs), numa.iters_per_sec,
               ikc_per_rank, ikc_legacy.offloads_per_ms, ikc_legacy.queue.p95_us,
               ikc_ring.offloads_per_ms, ikc_ring.queue.p95_us,
               static_cast<unsigned long long>(ikc_ring.degraded),
               static_cast<unsigned long long>(ikc_ring.timeouts), ikc_per_rank,
               ikc_ring.wakeups_per_offload,
               static_cast<unsigned long long>(ikc_ring.doorbells),
               static_cast<unsigned long long>(ikc_ring.reply_wakeups),
               ikc_ring.queue.p95_us, ikc_reply.wakeups_per_offload,
               static_cast<unsigned long long>(ikc_reply.doorbells),
               static_cast<unsigned long long>(ikc_reply.reply_wakeups),
               ikc_reply.queue.p95_us,
               static_cast<unsigned long long>(ikc_reply.adaptive_grow),
               static_cast<unsigned long long>(ikc_reply.adaptive_shrink),
               static_cast<unsigned long long>(ikc_reply.remote_drains), wakeups_saved);
  std::fprintf(json, "  \"overload\": {\n    \"service_cpus\": 4,\n");
  for (const auto& rung : rungs) {
    double worst_p50 = 0, worst_p95 = 0, worst_max = 0;
    std::uint64_t eagain_total = 0;
    for (const auto& o : rung.r.jobs) {
      if (o.queue.p50_us > worst_p50) worst_p50 = o.queue.p50_us;
      if (o.queue.p95_us > worst_p95) worst_p95 = o.queue.p95_us;
      if (o.queue.max_us > worst_max) worst_max = o.queue.max_us;
      eagain_total += o.eagain;
    }
    std::fprintf(json,
                 "    \"n%d\": {\"jobs\": %d, \"jain\": %.4f, \"completed\": %llu, "
                 "\"eagain\": %llu, \"queue_p50_us_worst\": %.1f, "
                 "\"queue_p95_us_worst\": %.1f, \"queue_max_us_worst\": %.1f, "
                 "\"window_ms\": %.1f},\n",
                 rung.jobs, rung.jobs, rung.r.jain,
                 static_cast<unsigned long long>(rung.r.completed_total),
                 static_cast<unsigned long long>(eagain_total), worst_p50, worst_p95,
                 worst_max, rung.r.window_ms);
  }
  std::fprintf(json,
               "    \"n64_strict\": {\"jain\": %.4f},\n"
               "    \"flood\": {\"victim_p95_us\": %.1f, \"baseline_p95_us\": %.1f, "
               "\"victim_p95_ratio\": %.3f, \"victim_jain\": %.4f, "
               "\"flooder_completed\": %llu, \"flooder_eagain\": %llu, "
               "\"flooder_credit_waits\": %llu}\n"
               "  },\n",
               strict64.jain, flood_victim_p95, base_victim_p95, victim_p95_ratio,
               victim_jain(flood_run),
               static_cast<unsigned long long>(flooder.completed),
               static_cast<unsigned long long>(flooder.eagain),
               static_cast<unsigned long long>(flooder.credit_waits));
  std::fprintf(json,
               "  \"elastic\": {\n"
               "    \"streams\": 64, \"service_cpus\": 4, \"shrink_by\": 2,\n"
               "    \"pre_p95_us\": %.1f, \"shrink_during_p95_us\": %.1f, "
               "\"shrink_after_p95_us\": %.1f, \"grow_during_p95_us\": %.1f, "
               "\"grow_after_p95_us\": %.1f,\n"
               "    \"quiesce_us\": %.1f, \"attach_us\": %.1f,\n"
               "    \"submitted\": %llu, \"completed\": %llu, \"lost\": %llu, "
               "\"failed\": %llu,\n"
               "    \"timeouts\": %llu, \"degraded\": %llu, \"stale_skips\": %llu, "
               "\"dead_skips\": %llu, \"retired\": %llu, \"attached\": %llu\n"
               "  }\n"
               "}\n",
               elastic.pre_p95_us, elastic.shrink_during_p95_us,
               elastic.shrink_after_p95_us, elastic.grow_during_p95_us,
               elastic.grow_after_p95_us, elastic.quiesce_us, elastic.attach_us,
               static_cast<unsigned long long>(elastic.submitted),
               static_cast<unsigned long long>(elastic.completed),
               static_cast<unsigned long long>(elastic.lost),
               static_cast<unsigned long long>(elastic.failed),
               static_cast<unsigned long long>(elastic.timeouts),
               static_cast<unsigned long long>(elastic.degraded),
               static_cast<unsigned long long>(elastic.stale_skips),
               static_cast<unsigned long long>(elastic.dead_skips),
               static_cast<unsigned long long>(elastic.retired),
               static_cast<unsigned long long>(elastic.attached));
  std::fclose(json);
  std::printf("  wrote BENCH_fastpath.json\n");

  // Acceptance: >= 2x on the repeated-buffer workload, allocation-free in
  // steady state (every container reuses capacity, every block a magazine).
  if (speedup < 2.0) {
    std::printf("  FAIL: expected >= 2x speedup\n");
    return 1;
  }
  if (fast.allocs_per_op > 0.001) {
    std::printf("  FAIL: optimized pipeline still allocates\n");
    return 1;
  }
  // Mixed-lifetime acceptance: range-precise invalidation + size-aware
  // eviction must keep the persistent window hot through transient churn;
  // the PR-1 emulation must show the collapse this PR fixes.
  if (precise.window_hit_rate < 0.9) {
    std::printf("  FAIL: precise config lost the persistent window (%.1f%% hits)\n",
                100.0 * precise.window_hit_rate);
    return 1;
  }
  if (coarse.window_hit_rate > 0.1) {
    std::printf("  FAIL: coarse baseline unexpectedly kept the window (%.1f%% hits) — "
                "the comparison no longer demonstrates the fix\n",
                100.0 * coarse.window_hit_rate);
    return 1;
  }
  // NUMA acceptance: per-source-socket batching must cut cross-socket
  // reclaim events on the completion-heavy workload without reintroducing
  // host allocations into the steady-state free/drain cycle.
  if (numa.cross_drains_per_iter >= flat_numa.cross_drains_per_iter) {
    std::printf("  FAIL: numa-aware drain shows no cross-socket reduction "
                "(%.2f vs %.2f per iter)\n",
                numa.cross_drains_per_iter, flat_numa.cross_drains_per_iter);
    return 1;
  }
  if (numa.heap_allocs_per_iter > flat_numa.heap_allocs_per_iter + 0.001) {
    std::printf("  FAIL: numa-aware heap allocates more in steady state "
                "(%.3f vs %.3f per iter)\n",
                numa.heap_allocs_per_iter, flat_numa.heap_allocs_per_iter);
    return 1;
  }
  // IKC acceptance: batched ring service must beat per-offload proxy
  // wakeups on tail queueing under the paper's rank/CPU squeeze.
  if (ikc_ring.queue.p95_us >= ikc_legacy.queue.p95_us) {
    std::printf("  FAIL: ring transport p95 queueing %.1f us >= legacy %.1f us\n",
                ikc_ring.queue.p95_us, ikc_legacy.queue.p95_us);
    return 1;
  }
  // Reply-ring acceptance (§8.4): the shared-memory reply path must shed
  // (essentially) the whole per-request completion wakeup — one fewer
  // cross-kernel wakeup per offload round trip than the latch shape — with
  // tail queueing no worse.
  if (wakeups_saved < 0.9) {
    std::printf("  FAIL: reply ring saved only %.2f wakeups/offload vs latch "
                "(%.2f -> %.2f)\n",
                wakeups_saved, ikc_ring.wakeups_per_offload,
                ikc_reply.wakeups_per_offload);
    return 1;
  }
  if (ikc_reply.queue.p95_us > ikc_ring.queue.p95_us * 1.02) {
    std::printf("  FAIL: reply ring p95 queueing %.1f us worse than latch %.1f us\n",
                ikc_reply.queue.p95_us, ikc_ring.queue.p95_us);
    return 1;
  }
  // Multi-tenant acceptance (§8.6): the 1024-tenant equal-weight rung must
  // flatten the 4:1 offered-load skew to near-equal service shares, and the
  // flooder must be the only tenant that pays for its own overload.
  for (const auto& rung : rungs) {
    if (rung.jobs == 1024 && rung.r.jain < 0.95) {
      std::printf("  FAIL: 1024-job rung jain %.4f < 0.95\n", rung.r.jain);
      return 1;
    }
  }
  if (victim_p95_ratio > 2.0) {
    std::printf("  FAIL: flooder pushed victim p95 to %.2fx the no-flooder baseline\n",
                victim_p95_ratio);
    return 1;
  }
  if (flooder.eagain == 0) {
    std::printf("  FAIL: flooder was never throttled (expected EAGAIN > 0)\n");
    return 1;
  }
  // Elastic acceptance (§8.7): the live shrink/grow cycle must be lossless —
  // every submitted offload completes (no stranded entries, no timeouts, no
  // stale/dead skips during the handover), both retires and both attaches
  // land, and the restored pool's tail returns to the boot-shape ballpark.
  if (elastic.lost != 0 || elastic.failed != 0) {
    std::printf("  FAIL: elastic repartition lost %llu / failed %llu offloads\n",
                static_cast<unsigned long long>(elastic.lost),
                static_cast<unsigned long long>(elastic.failed));
    return 1;
  }
  if (elastic.timeouts != 0 || elastic.stale_skips != 0 || elastic.dead_skips != 0) {
    std::printf("  FAIL: elastic repartition tripped the robustness ladder "
                "(timeouts %llu, stale %llu, dead %llu)\n",
                static_cast<unsigned long long>(elastic.timeouts),
                static_cast<unsigned long long>(elastic.stale_skips),
                static_cast<unsigned long long>(elastic.dead_skips));
    return 1;
  }
  if (elastic.retired != 2 || elastic.attached != 2) {
    std::printf("  FAIL: expected 2 retires + 2 attaches, got %llu/%llu\n",
                static_cast<unsigned long long>(elastic.retired),
                static_cast<unsigned long long>(elastic.attached));
    return 1;
  }
  if (elastic.grow_after_p95_us > elastic.pre_p95_us * 3.0 + 5.0) {
    std::printf("  FAIL: restored pool p95 %.1f us never recovered toward "
                "boot-shape %.1f us\n",
                elastic.grow_after_p95_us, elastic.pre_p95_us);
    return 1;
  }
  return 0;
}
