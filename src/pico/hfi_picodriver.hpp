// The HFI PicoDriver: LWK fast paths for SDMA send (writev) and expected-
// receive registration (the three TID ioctls) — the < 3 K SLOC the paper
// ports, everything else stays on the offload path.
//
// The fast paths differ from the Linux driver's in exactly the §3.4 ways:
//   * no get_user_pages: LWK anonymous memory is pinned at mmap time, so
//     the driver walks page tables directly (cheaper per page);
//   * descriptors up to the hardware's 10 KiB, built from physically
//     contiguous extents (large pages make those common on the LWK);
//   * completion metadata lives in the *McKernel* heap; the completion
//     callback is a duplicated copy in LWK TEXT whose deallocation routine
//     is McKernel's (§3.3) — it runs on a Linux CPU and routes the free
//     through the remote-free queue.
//
// On top of that, the steady-state fast path is allocation-free on the
// host side:
//   * a per-open-file ExtentCache memoizes the page-table walk, so repeated
//     sends / TID registrations of the same pinned buffer reuse cached
//     PhysExtent runs (invalidated range-precisely against the address
//     space's unmap-interval log, with the map generation as the overflow
//     fallback, and evicted size-aware so persistent windows survive
//     small-buffer churn);
//   * SDMA descriptors are built into arena-pooled vectors that the engine
//     hands back after consuming them (SdmaRequest::recycle_descriptors);
//   * completion metadata comes from the kheap's per-core slab magazines.
// Cache and fallback events are exported as named counters on the LWK's
// SyscallProfiler ("pico.extent_cache.*", "pico.ring_full_fallback",
// "lwk.kheap.slab_reuse").
//
// All driver state it touches (sdma_engine/sdma_state images, filedata,
// ctxtdata) is read and written through DWARF-extracted offsets only.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/hfi/driver.hpp"
#include "src/mem/extent_cache.hpp"
#include "src/pico/framework.hpp"

namespace pd::pico {

class HfiPicoDriver {
 public:
  /// Bind against the driver's shipped module and install the fast paths
  /// into the LWK. Fails (forwarding PicoBinding::bind errors) when the
  /// LWK booted with the original VA layout, on lock-ABI mismatch, or when
  /// the module's debug info lacks a required structure.
  static Result<std::unique_ptr<HfiPicoDriver>> create(os::McKernel& mck,
                                                       hfi::HfiDriver& driver);

  const PicoBinding& binding() const { return binding_; }
  hfi::HfiDriver& driver() { return driver_; }

  /// Per-rank initialization cost (kernel-level mapping setup); PSM calls
  /// this from its init path — the extra MPI_Init time in Table 1.
  sim::Task<> rank_init();

  /// --- fast paths (installed via McKernel::register_fastpath) ------------
  sim::Task<Result<long>> fast_writev(os::OpenFile& f, std::span<const os::IoVec> iov);
  sim::Task<Result<long>> fast_ioctl(os::OpenFile& f, unsigned long cmd, void* arg);

  /// --- instrumentation ----------------------------------------------------
  std::uint64_t fast_writevs() const { return fast_writevs_; }
  std::uint64_t fast_tid_updates() const { return fast_tid_updates_; }
  std::uint64_t fast_tid_frees() const { return fast_tid_frees_; }
  std::uint64_t fallbacks() const { return fallbacks_; }
  std::uint64_t ring_full_fallbacks() const { return ring_full_fallbacks_; }
  std::uint64_t remote_frees_drained() const { return drained_total_; }
  std::uint64_t extent_cache_hits() const { return cache_hits_; }
  std::uint64_t extent_cache_misses() const { return cache_misses_; }
  std::uint64_t extent_cache_range_invalidations() const { return cache_range_invalidations_; }
  std::uint64_t extent_cache_generation_overflows() const { return cache_generation_overflows_; }
  std::uint64_t extent_cache_small_evictions() const { return cache_small_evictions_; }
  /// Whole file caches dropped to keep a process inside
  /// `Config::pico_extent_quota_files` (own-LRU only; see extent_cache_for).
  std::uint64_t extent_cache_file_quota_evictions() const {
    return cache_file_quota_evictions_;
  }
  /// Quota-eviction candidates passed over because an in-flight fast path
  /// held pinned entries in them (the eviction falls to the next-coldest
  /// owned cache; all-pinned overflows the quota until a pin drops).
  std::uint64_t extent_cache_quota_skip_pinned() const {
    return cache_quota_skip_pinned_;
  }
  /// All re-walks of a known key, whatever proved it stale.
  std::uint64_t extent_cache_invalidations() const {
    return cache_range_invalidations_ + cache_generation_overflows_;
  }

 private:
  HfiPicoDriver(PicoBinding binding, os::McKernel& mck, hfi::HfiDriver& driver);

  /// Read the engine's current sdma_state through extracted offsets.
  hfi::SdmaStates engine_state(int engine_id) const;
  int lwk_cpu_for(const os::Process& proc) const;

  /// Per-open-file translation cache (keyed by process identity + fd so a
  /// recycled OpenFile slot can never alias a previous file's entries).
  mem::ExtentCache& extent_cache_for(const os::OpenFile& f);
  /// Record a lookup outcome in the local counters and the LWK profiler.
  void note_cache_outcome(mem::ExtentCache::Outcome outcome);

  /// Descriptor arena: pop a pooled vector (capacity intact) / return it.
  std::vector<hw::SdmaDescriptor> take_desc_buffer();
  void recycle_desc_buffer(std::vector<hw::SdmaDescriptor>&& buf);

  PicoBinding binding_;
  os::McKernel& mck_;
  hfi::HfiDriver& driver_;

  dwarf::FieldAccessor<std::uint32_t> eng_this_idx_;
  dwarf::FieldAccessor<std::uint64_t> eng_descq_submitted_;
  std::uint64_t state_offset_in_engine_ = 0;   // sdma_engine.state
  dwarf::FieldAccessor<std::uint32_t> state_current_;
  dwarf::FieldAccessor<std::uint32_t> fd_engine_idx_;
  dwarf::FieldAccessor<std::uint64_t> fd_tid_used_;
  dwarf::FieldAccessor<std::uint32_t> cd_expected_count_;

  /// Per-file cache plus its position in the recency list, so a touch is
  /// an O(1) splice instead of the old O(n) find+rotate over a vector.
  using FileKey = std::pair<const void*, int>;
  struct FileCacheNode {
    mem::ExtentCache cache;
    std::list<FileKey>::iterator order_pos;
  };
  std::map<FileKey, FileCacheNode> file_caches_;
  // Touch order (front = coldest) for the per-process file-cache quota.
  std::list<FileKey> file_cache_order_;
  std::vector<std::vector<hw::SdmaDescriptor>> desc_arena_;

  std::uint64_t fast_writevs_ = 0;
  std::uint64_t fast_tid_updates_ = 0;
  std::uint64_t fast_tid_frees_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t ring_full_fallbacks_ = 0;
  std::uint64_t drained_total_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_range_invalidations_ = 0;
  std::uint64_t cache_generation_overflows_ = 0;
  std::uint64_t cache_small_evictions_ = 0;
  std::uint64_t cache_file_quota_evictions_ = 0;
  std::uint64_t cache_quota_skip_pinned_ = 0;
};

}  // namespace pd::pico
