#include "src/mpirt/world.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/log.hpp"

namespace pd::mpirt {

using namespace pd::time_literals;

namespace {
constexpr int kCollTagBase = 0x4000'0000;
constexpr std::uint64_t kTinyMsg = 8;  // control payloads in collectives

/// log2 of a power-of-two mask (tag-round index for binomial phases).
int mask_round(int mask) {
  int r = 0;
  while (mask >>= 1) ++r;
  return r;
}
}  // namespace

// --------------------------------------------------------------------------
// MpiWorld
// --------------------------------------------------------------------------

MpiWorld::MpiWorld(Cluster& cluster, WorldOptions opts)
    : cluster_(cluster), opts_(opts) {
  const int total = cluster_.num_nodes() * opts_.ranks_per_node;
  ranks_.reserve(static_cast<std::size_t>(total));
  inboxes_.resize(static_cast<std::size_t>(total));
  for (int r = 0; r < total; ++r) {
    // Endpoint construction spawns the PSM progress loop; pin it (and
    // everything else the rank owns) to its node's shard.
    sim::Engine::ShardScope shard(cluster_.engine(), node_of(r));
    auto proc = cluster_.make_process(node_of(r), ctxt_of(r));
    auto& node = cluster_.node(node_of(r));
    auto ep = std::make_unique<psm::Endpoint>(*proc, *node.device, node.pico.get());
    ranks_.push_back(std::make_unique<Rank>(*this, r, std::move(proc), std::move(ep)));
  }
}

void MpiWorld::run(const std::function<sim::Task<>(Rank&)>& body) {
  completed_ = 0;
  for (auto& rank : ranks_) {
    sim::Engine::ShardScope shard(cluster_.engine(), node_of(rank->id()));
    sim::spawn(cluster_.engine(), [](MpiWorld* world, Rank* r,
                                     const std::function<sim::Task<>(Rank&)>& fn) -> sim::Task<> {
      co_await fn(*r);
      ++world->completed_;
    }(this, rank.get(), body));
  }
  cluster_.engine().run();
  assert(completed_ == size() && "some rank did not run to completion (deadlock?)");
}

MpiStatsTable MpiWorld::stats_table() const {
  MpiStatsTable table;
  for (const auto& rank : ranks_) table.add_rank(rank->stats());
  return table;
}

// --- collective algorithm selection (I_MPI_ADJUST-style crossover) ---------

const char* MpiWorld::allreduce_algo(std::uint64_t bytes) const {
  const CollectiveTuning& t = opts_.tuning;
  if (!t.force_allreduce.empty()) return t.force_allreduce.c_str();
  const int leaders = cluster_.num_nodes();
  if (leaders >= t.allreduce_ring_min_leaders && bytes >= t.allreduce_ring_bytes)
    return "ring";
  if (bytes >= t.allreduce_rd_bytes) return "recursive_doubling";
  return "dissemination";
}

const char* MpiWorld::bcast_algo(std::uint64_t bytes) const {
  const CollectiveTuning& t = opts_.tuning;
  if (!t.force_bcast.empty()) return t.force_bcast.c_str();
  const int leaders = cluster_.num_nodes();
  if (leaders >= t.bcast_chain_min_leaders && bytes >= t.bcast_chain_bytes)
    return "chain";
  return "binomial";
}

const char* MpiWorld::reduce_algo(std::uint64_t bytes) const {
  const CollectiveTuning& t = opts_.tuning;
  if (!t.force_reduce.empty()) return t.force_reduce.c_str();
  if (size() >= t.reduce_chain_min_ranks && bytes >= t.reduce_chain_bytes)
    return "chain";
  return "binomial";
}

const char* MpiWorld::alltoall_algo(std::uint64_t bytes_per_pair,
                                    std::uint64_t sdma_threshold) const {
  const CollectiveTuning& t = opts_.tuning;
  if (!t.force_alltoall.empty()) return t.force_alltoall.c_str();
  const std::uint64_t cutover =
      t.alltoall_pairwise_bytes > 0 ? t.alltoall_pairwise_bytes : sdma_threshold;
  return bytes_per_pair <= cutover ? "spread" : "pairwise";
}

Dur MpiWorld::max_runtime() const {
  Dur worst = 0;
  for (const auto& rank : ranks_) worst = std::max(worst, rank->stats().runtime());
  return worst;
}

Dur MpiWorld::max_solve() const {
  Dur worst = 0;
  for (const auto& rank : ranks_) worst = std::max(worst, rank->stats().solve());
  return worst;
}

void MpiWorld::shm_complete(MpiReq& req) {
  req->complete = true;
  req->done->trigger();
}

void MpiWorld::shm_send(int src, int dst, int tag, std::uint64_t bytes) {
  // Copy through the shared-memory segment, then match at the destination.
  sim::spawn(cluster_.engine(), [](MpiWorld* world, int s, int d, int t,
                                   std::uint64_t len) -> sim::Task<> {
    const os::Config& cfg = world->cluster_.options().cfg;
    co_await world->cluster_.engine().delay(
        300_ns + transfer_time(len, cfg.memcpy_bytes_per_sec));
    ShmInbox& inbox = world->inboxes_[static_cast<std::size_t>(d)];
    auto it = std::find_if(inbox.posted.begin(), inbox.posted.end(), [&](const ShmPosted& p) {
      return p.src == s && p.tag == t;
    });
    if (it != inbox.posted.end()) {
      MpiReq req = it->req;
      inbox.posted.erase(it);
      shm_complete(req);
    } else {
      inbox.unexpected.push_back(ShmPending{s, t, len});
    }
  }(this, src, dst, tag, bytes));
}

void MpiWorld::shm_post(int dst, MpiReq req, int src, int tag) {
  ShmInbox& inbox = inboxes_[static_cast<std::size_t>(dst)];
  auto it = std::find_if(inbox.unexpected.begin(), inbox.unexpected.end(),
                         [&](const ShmPending& p) { return p.src == src && p.tag == tag; });
  if (it != inbox.unexpected.end()) {
    inbox.unexpected.erase(it);
    shm_complete(req);
    return;
  }
  inbox.posted.push_back(ShmPosted{std::move(req), src, tag});
}

// --------------------------------------------------------------------------
// Rank — plumbing
// --------------------------------------------------------------------------

Rank::Rank(MpiWorld& world, int id, std::unique_ptr<os::Process> proc,
           std::unique_ptr<psm::Endpoint> ep)
    : world_(world), id_(id), proc_(std::move(proc)), ep_(std::move(ep)) {}

mem::VirtAddr Rank::send_slot(std::uint64_t bytes) {
  const auto& opts = world_.options();
  if (bytes > opts.slot_bytes) return sendbuf_;  // big messages use offset 0
  const std::uint64_t slots = opts.buf_bytes / opts.slot_bytes;
  return sendbuf_ + (send_slot_idx_++ % slots) * opts.slot_bytes;
}

mem::VirtAddr Rank::recv_slot(std::uint64_t bytes) {
  const auto& opts = world_.options();
  if (bytes > opts.slot_bytes) return recvbuf_;
  const std::uint64_t slots = opts.buf_bytes / opts.slot_bytes;
  return recvbuf_ + (recv_slot_idx_++ % slots) * opts.slot_bytes;
}

int Rank::coll_tag(int round) const {
  return kCollTagBase | static_cast<int>((coll_seq_ & 0xFFFFFF) << 6) | round;
}

MpiReq Rank::post_send(int dst, int tag, std::uint64_t bytes) {
  ++sent_msgs_;
  sent_bytes_ += bytes;
  auto req = std::make_shared<MpiReqState>();
  if (world_.node_of(dst) == node()) {
    req->shm = true;
    req->done = std::make_unique<sim::Latch>(world_.cluster_.engine());
    world_.shm_send(id_, dst, tag, bytes);
    // Shared-memory sends complete locally once copied; model them as
    // immediately complete for the sender.
    MpiWorld::shm_complete(req);
    return req;
  }
  req->psm = ep_->isend(psm::EndpointId{world_.node_of(dst), world_.ctxt_of(dst)},
                        static_cast<std::uint64_t>(tag), bytes, send_slot(bytes));
  return req;
}

MpiReq Rank::post_recv(int src, int tag, std::uint64_t bytes) {
  ++recvd_msgs_;
  recvd_bytes_ += bytes;
  auto req = std::make_shared<MpiReqState>();
  if (world_.node_of(src) == node()) {
    req->shm = true;
    req->done = std::make_unique<sim::Latch>(world_.cluster_.engine());
    world_.shm_post(id_, req, src, tag);
    return req;
  }
  req->psm = ep_->irecv(psm::EndpointId{world_.node_of(src), world_.ctxt_of(src)},
                        static_cast<std::uint64_t>(tag), bytes, recv_slot(bytes));
  return req;
}

sim::Task<> Rank::await_req(MpiReq req) {
  if (req->shm) {
    if (!req->complete) co_await req->done->wait();
    co_return;
  }
  co_await ep_->wait(req->psm);
}

sim::Task<> Rank::sendrecv(int dst, int src, int tag, std::uint64_t bytes) {
  MpiReq r = post_recv(src, tag, bytes);
  MpiReq s = post_send(dst, tag, bytes);
  co_await await_req(s);
  co_await await_req(r);
}

// --------------------------------------------------------------------------
// Rank — MPI surface
// --------------------------------------------------------------------------

sim::Task<> Rank::init() {
  init_start_ = world_.cluster_.engine().now();
  // Application communication buffers are the app's own allocations, not
  // MPI_Init work — keep them outside the recorded Init window (they still
  // show up in the kernel profiler as mmap time).
  auto sb = co_await proc_->mmap_anon(world_.options().buf_bytes);
  auto rb = co_await proc_->mmap_anon(world_.options().buf_bytes);
  assert(sb.ok() && rb.ok());
  sendbuf_ = *sb;
  recvbuf_ = *rb;

  const Time t0 = world_.cluster_.engine().now();
  Status s = co_await ep_->init();
  assert(s.ok());
  (void)s;
  co_await barrier_impl();  // the synchronization at the end of Init
  stats_.record("Init", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::finalize() {
  const Time t0 = world_.cluster_.engine().now();
  co_await barrier_impl();
  (void)co_await proc_->munmap(sendbuf_, world_.options().buf_bytes);
  (void)co_await proc_->munmap(recvbuf_, world_.options().buf_bytes);
  co_await ep_->finalize();
  stats_.record("Finalize", world_.cluster_.engine().now() - t0);
  stats_.set_runtime(world_.cluster_.engine().now() - init_start_);
}

MpiReq Rank::isend(int dst, int tag, std::uint64_t bytes) {
  const Time t0 = world_.cluster_.engine().now();
  MpiReq req = post_send(dst, tag, bytes);
  stats_.record("Isend", world_.cluster_.engine().now() - t0);
  return req;
}

MpiReq Rank::irecv(int src, int tag, std::uint64_t bytes) {
  const Time t0 = world_.cluster_.engine().now();
  MpiReq req = post_recv(src, tag, bytes);
  stats_.record("Irecv", world_.cluster_.engine().now() - t0);
  return req;
}

sim::Task<> Rank::wait(MpiReq req) {
  const Time t0 = world_.cluster_.engine().now();
  co_await await_req(std::move(req));
  stats_.record("Wait", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::waitall(std::vector<MpiReq> reqs) {
  const Time t0 = world_.cluster_.engine().now();
  for (auto& r : reqs) co_await await_req(std::move(r));
  stats_.record("Waitall", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::send(int dst, int tag, std::uint64_t bytes) {
  const Time t0 = world_.cluster_.engine().now();
  MpiReq req = post_send(dst, tag, bytes);
  co_await await_req(std::move(req));
  stats_.record("Send", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::recv(int src, int tag, std::uint64_t bytes) {
  const Time t0 = world_.cluster_.engine().now();
  MpiReq req = post_recv(src, tag, bytes);
  co_await await_req(std::move(req));
  stats_.record("Recv", world_.cluster_.engine().now() - t0);
}

Rank::MpiPersist Rank::send_init(int dst, int tag, std::uint64_t bytes) {
  auto p = std::make_shared<Persistent>();
  p->is_send = true;
  p->peer = dst;
  p->tag = tag;
  p->bytes = bytes;
  return p;
}

Rank::MpiPersist Rank::recv_init(int src, int tag, std::uint64_t bytes) {
  auto p = std::make_shared<Persistent>();
  p->is_send = false;
  p->peer = src;
  p->tag = tag;
  p->bytes = bytes;
  return p;
}

void Rank::start(const MpiPersist& p) {
  const Time t0 = world_.cluster_.engine().now();
  assert(p->active == nullptr && "persistent request already active");
  p->active = p->is_send ? post_send(p->peer, p->tag, p->bytes)
                         : post_recv(p->peer, p->tag, p->bytes);
  stats_.record("Start", world_.cluster_.engine().now() - t0);
}

void Rank::startall(const std::vector<MpiPersist>& ps) {
  for (const auto& p : ps) start(p);
}

sim::Task<> Rank::wait(const MpiPersist& p) {
  const Time t0 = world_.cluster_.engine().now();
  assert(p->active != nullptr && "wait on unstarted persistent request");
  MpiReq req = std::move(p->active);
  p->active = nullptr;
  co_await await_req(std::move(req));
  stats_.record("Wait", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::waitall_persist(const std::vector<MpiPersist>& ps) {
  const Time t0 = world_.cluster_.engine().now();
  for (const auto& p : ps) {
    if (p->active == nullptr) continue;
    MpiReq req = std::move(p->active);
    p->active = nullptr;
    co_await await_req(std::move(req));
  }
  stats_.record("Waitall", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::dissemination(std::uint64_t bytes_per_round) {
  const int P = world_.size();
  for (int k = 0, step = 1; step < P; ++k, step <<= 1) {
    const int dst = (id_ + step) % P;
    const int src = (id_ - step % P + P) % P;
    co_await sendrecv(dst, src, coll_tag(k), bytes_per_round);
  }
}

// --- hierarchical building blocks (intra-node over shared memory, node
// leaders on the fabric) ----------------------------------------------------

int Rank::node_leader() const {
  return (id_ / world_.opts_.ranks_per_node) * world_.opts_.ranks_per_node;
}

int Rank::local_index() const { return id_ % world_.opts_.ranks_per_node; }

int Rank::num_nodes() const {
  const int rpn = world_.opts_.ranks_per_node;
  return (world_.size() + rpn - 1) / rpn;
}

/// Binomial reduction of the node's ranks onto the leader (tag rounds 0..5).
sim::Task<> Rank::intra_reduce_to_leader(std::uint64_t bytes) {
  const int m = std::min(world_.opts_.ranks_per_node, world_.size());
  const int l = local_index();
  for (int mask = 1; mask < m; mask <<= 1) {
    if (l & mask) {
      MpiReq s = post_send(id_ - mask, coll_tag(mask_round(mask)), bytes);
      co_await await_req(std::move(s));
      break;
    }
    if (l + mask < m) {
      MpiReq r = post_recv(id_ + mask, coll_tag(mask_round(mask)), bytes);
      co_await await_req(std::move(r));
    }
  }
}

/// Binomial release from the leader to the node's ranks (tag rounds 16..21).
sim::Task<> Rank::intra_release_from_leader(std::uint64_t bytes) {
  const int m = std::min(world_.opts_.ranks_per_node, world_.size());
  const int l = local_index();
  int mask = 1;
  while (mask < m) {
    if (l & mask) {
      MpiReq r = post_recv(id_ - mask, coll_tag(16 + mask_round(mask)), bytes);
      co_await await_req(std::move(r));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (l + mask < m && (l & mask) == 0) {
      MpiReq s = post_send(id_ + mask, coll_tag(16 + mask_round(mask)), bytes);
      co_await await_req(std::move(s));
    }
    mask >>= 1;
  }
}

/// Dissemination among node leaders (tag rounds 32..47); only leaders call.
sim::Task<> Rank::leader_dissemination(std::uint64_t bytes) {
  const int rpn = world_.opts_.ranks_per_node;
  const int nodes = (world_.size() + rpn - 1) / rpn;
  const int my_node = id_ / rpn;
  for (int k = 0, step = 1; step < nodes; ++k, step <<= 1) {
    const int dst = ((my_node + step) % nodes) * rpn;
    const int src = ((my_node - step % nodes + nodes) % nodes) * rpn;
    co_await sendrecv(dst, src, coll_tag(32 + k), bytes);
  }
}

/// Recursive-doubling allreduce among node leaders (MPICH shape): fold the
/// non-power-of-two remainder onto even partners (tag round 47), exchange
/// the full vector pairwise over log2 rounds (32+k), unfold (46). Fewer
/// messages than dissemination once the payload dwarfs per-message latency.
sim::Task<> Rank::leader_recursive_doubling(std::uint64_t bytes) {
  const int rpn = world_.opts_.ranks_per_node;
  const int nodes = num_nodes();
  if (nodes < 2) co_return;
  const int v = id_ / rpn;
  const auto leader = [rpn](int n) { return n * rpn; };
  int pow2 = 1;
  while (pow2 * 2 <= nodes) pow2 *= 2;
  const int rem = nodes - pow2;
  int newid = -1;  // -1 = folded out of the exchange phase
  if (v < 2 * rem) {
    if (v & 1) {
      MpiReq s = post_send(leader(v - 1), coll_tag(47), bytes);
      co_await await_req(std::move(s));
    } else {
      MpiReq r = post_recv(leader(v + 1), coll_tag(47), bytes);
      co_await await_req(std::move(r));
      newid = v / 2;
    }
  } else {
    newid = v - rem;
  }
  if (newid >= 0) {
    for (int mask = 1; mask < pow2; mask <<= 1) {
      const int pn = newid ^ mask;
      const int pv = pn < rem ? pn * 2 : pn + rem;
      co_await sendrecv(leader(pv), leader(pv), coll_tag(32 + mask_round(mask)),
                        bytes);
    }
  }
  if (v < 2 * rem) {
    if (v & 1) {
      MpiReq r = post_recv(leader(v - 1), coll_tag(46), bytes);
      co_await await_req(std::move(r));
    } else {
      MpiReq s = post_send(leader(v + 1), coll_tag(46), bytes);
      co_await await_req(std::move(s));
    }
  }
}

/// Ring allreduce among node leaders: reduce-scatter then allgather, each
/// N-1 lock-stepped steps of one 1/N chunk to the right neighbour — the
/// bandwidth-optimal shape for large vectors. Steps are sequential per
/// (src, dst), so the 14-slot tag window (32 + step % 14) cannot collide.
sim::Task<> Rank::leader_ring_allreduce(std::uint64_t bytes) {
  const int rpn = world_.opts_.ranks_per_node;
  const int nodes = num_nodes();
  if (nodes < 2) co_return;
  const int v = id_ / rpn;
  const int right = ((v + 1) % nodes) * rpn;
  const int left = ((v - 1 + nodes) % nodes) * rpn;
  const std::uint64_t chunk =
      (bytes + static_cast<std::uint64_t>(nodes) - 1) /
      static_cast<std::uint64_t>(nodes);
  for (int step = 0; step < 2 * (nodes - 1); ++step)
    co_await sendrecv(right, left, coll_tag(32 + step % 14), chunk);
}

/// Pipelined-chain bcast among node leaders, rooted at `root_node`: the
/// payload streams down the chain in `chain_segment_bytes` segments, so
/// leader i forwards segment s while leader i-1 is already sending s+1 —
/// O(N + S) segment times instead of the binomial's log2(N) full-payload
/// hops. Worth it only for payloads long enough to fill the pipeline.
sim::Task<> Rank::leader_chain_bcast(int root_node, std::uint64_t bytes) {
  const int rpn = world_.opts_.ranks_per_node;
  const int nodes = num_nodes();
  if (nodes < 2) co_return;
  const int my_node = id_ / rpn;
  const int vnode = (my_node - root_node + nodes) % nodes;
  const int prev = ((my_node - 1 + nodes) % nodes) * rpn;
  const int next = ((my_node + 1) % nodes) * rpn;
  const std::uint64_t seg = std::max<std::uint64_t>(
      1, std::min(world_.opts_.tuning.chain_segment_bytes, bytes));
  const std::uint64_t nseg = (bytes + seg - 1) / seg;
  for (std::uint64_t s = 0; s < nseg; ++s) {
    const std::uint64_t len = std::min(seg, bytes - s * seg);
    const int tag = coll_tag(32 + static_cast<int>(s % 14));
    if (vnode > 0) {
      MpiReq r = post_recv(prev, tag, len);
      co_await await_req(std::move(r));
    }
    if (vnode + 1 < nodes) {
      MpiReq snd = post_send(next, tag, len);
      co_await await_req(std::move(snd));
    }
  }
}

sim::Task<> Rank::barrier_impl() {
  ++coll_seq_;
  co_await intra_reduce_to_leader(kTinyMsg);
  if (id_ == node_leader()) co_await leader_dissemination(kTinyMsg);
  co_await intra_release_from_leader(kTinyMsg);
}

sim::Task<> Rank::barrier() {
  const Time t0 = world_.cluster_.engine().now();
  co_await barrier_impl();
  stats_.record("Barrier", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::allreduce(std::uint64_t bytes) {
  const Time t0 = world_.cluster_.engine().now();
  ++coll_seq_;
  // Hierarchical: node-local reduce, leaders allreduce over the fabric,
  // node-local broadcast (the Intel MPI shared-memory topology). The
  // fabric phase is algorithm-selected by the size/leader-count crossover.
  const char* algo = world_.allreduce_algo(bytes);
  stats_.record_algo("Allreduce", algo);
  co_await intra_reduce_to_leader(bytes);
  if (id_ == node_leader()) {
    if (std::strcmp(algo, "ring") == 0)
      co_await leader_ring_allreduce(bytes);
    else if (std::strcmp(algo, "recursive_doubling") == 0)
      co_await leader_recursive_doubling(bytes);
    else
      co_await leader_dissemination(bytes);
  }
  co_await intra_release_from_leader(bytes);
  stats_.record("Allreduce", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::allgather_impl(std::uint64_t bytes_per_rank) {
  // Recursive doubling: exchanged volume doubles every round.
  ++coll_seq_;
  const int P = world_.size();
  std::uint64_t chunk = bytes_per_rank;
  const std::uint64_t cap = world_.options().buf_bytes / 2;
  for (int k = 0, step = 1; step < P; ++k, step <<= 1) {
    const int dst = (id_ + step) % P;
    const int src = (id_ - step % P + P) % P;
    co_await sendrecv(dst, src, coll_tag(k), std::min(chunk, cap));
    chunk = std::min(chunk * 2, cap);
  }
}

sim::Task<> Rank::allgather(std::uint64_t bytes_per_rank) {
  const Time t0 = world_.cluster_.engine().now();
  co_await allgather_impl(bytes_per_rank);
  stats_.record("Allgather", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::bcast_impl(int root, std::uint64_t bytes) {
  ++coll_seq_;
  const int rpn = world_.opts_.ranks_per_node;
  const int nodes = (world_.size() + rpn - 1) / rpn;
  const int root_node = root / rpn;
  const int root_leader = root_node * rpn;

  // Phase 0: the root hands the payload to its node leader (shared mem).
  if (root != root_leader) {
    if (id_ == root) {
      MpiReq s = post_send(root_leader, coll_tag(62), bytes);
      co_await await_req(std::move(s));
    } else if (id_ == root_leader) {
      MpiReq r = post_recv(root, coll_tag(62), bytes);
      co_await await_req(std::move(r));
    }
  }

  // Phase 1: fabric broadcast among node leaders — binomial tree or
  // pipelined chain per the size/leader-count crossover.
  if (id_ == node_leader() && nodes > 1) {
    if (std::strcmp(world_.bcast_algo(bytes), "chain") == 0) {
      co_await leader_chain_bcast(root_node, bytes);
    } else {
      const int my_node = id_ / rpn;
      const int vnode = (my_node - root_node + nodes) % nodes;
      int mask = 1;
      while (mask < nodes) {
        if (vnode & mask) {
          const int src = ((my_node - mask + nodes) % nodes) * rpn;
          MpiReq r = post_recv(src, coll_tag(32 + mask_round(mask)), bytes);
          co_await await_req(std::move(r));
          break;
        }
        mask <<= 1;
      }
      mask >>= 1;
      while (mask > 0) {
        if (vnode + mask < nodes && (vnode & mask) == 0) {
          const int dst = ((my_node + mask) % nodes) * rpn;
          MpiReq s = post_send(dst, coll_tag(32 + mask_round(mask)), bytes);
          co_await await_req(std::move(s));
        }
        mask >>= 1;
      }
    }
  }

  // Phase 2: node-local release over shared memory.
  co_await intra_release_from_leader(bytes);
}

sim::Task<> Rank::bcast(int root, std::uint64_t bytes) {
  const Time t0 = world_.cluster_.engine().now();
  stats_.record_algo("Bcast", world_.bcast_algo(bytes));
  co_await bcast_impl(root, bytes);
  stats_.record("Bcast", world_.cluster_.engine().now() - t0);
}

/// Flat binomial reduce toward `root` (the seed's textbook shape).
sim::Task<> Rank::binomial_reduce(int root, std::uint64_t bytes) {
  const int P = world_.size();
  const int vrank = (id_ - root % P + P) % P;
  int mask = 1;
  while (mask < P) {
    if ((vrank & mask) == 0) {
      if (vrank + mask < P) {
        const int src = (id_ + mask) % P;
        MpiReq r = post_recv(src, coll_tag(0), bytes);
        co_await await_req(std::move(r));
      }
    } else {
      const int dst = (id_ - mask + P) % P;
      MpiReq s = post_send(dst, coll_tag(0), bytes);
      co_await await_req(std::move(s));
      break;
    }
    mask <<= 1;
  }
}

/// Pipelined-chain reduce toward `root`: partial sums stream root-ward in
/// segments down the vrank chain (vrank P-1 … 0), so rank v combines
/// segment s while v+1 is already forwarding s+1.
sim::Task<> Rank::chain_reduce(int root, std::uint64_t bytes) {
  const int P = world_.size();
  if (P < 2) co_return;
  const int vrank = (id_ - root % P + P) % P;
  const int toward_root = (id_ - 1 + P) % P;  // vrank - 1
  const int from_leaf = (id_ + 1) % P;        // vrank + 1
  const std::uint64_t seg = std::max<std::uint64_t>(
      1, std::min(world_.opts_.tuning.chain_segment_bytes, bytes));
  const std::uint64_t nseg = (bytes + seg - 1) / seg;
  for (std::uint64_t s = 0; s < nseg; ++s) {
    const std::uint64_t len = std::min(seg, bytes - s * seg);
    const int tag = coll_tag(32 + static_cast<int>(s % 14));
    if (vrank + 1 < P) {
      MpiReq r = post_recv(from_leaf, tag, len);
      co_await await_req(std::move(r));
    }
    if (vrank > 0) {
      MpiReq snd = post_send(toward_root, tag, len);
      co_await await_req(std::move(snd));
    }
  }
}

sim::Task<> Rank::reduce(int root, std::uint64_t bytes) {
  const Time t0 = world_.cluster_.engine().now();
  ++coll_seq_;
  const char* algo = world_.reduce_algo(bytes);
  stats_.record_algo("Reduce", algo);
  if (std::strcmp(algo, "chain") == 0)
    co_await chain_reduce(root, bytes);
  else
    co_await binomial_reduce(root, bytes);
  stats_.record("Reduce", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::alltoall_impl(const std::vector<int>& members,
                                std::uint64_t bytes_per_pair, const char* algo) {
  ++coll_seq_;
  auto self = std::find(members.begin(), members.end(), id_);
  if (self == members.end()) co_return;
  const int m = static_cast<int>(members.size());
  const int i = static_cast<int>(self - members.begin());
  if (std::strcmp(algo, "pairwise") == 0) {
    // Large payloads: pairwise rounds bound rendezvous concurrency. The
    // tag round wraps through the 14-slot window; rounds are lock-stepped
    // per (src, dst) so reuse cannot mis-match.
    for (int step = 1; step < m; ++step) {
      const int dst = members[static_cast<std::size_t>((i + step) % m)];
      const int src = members[static_cast<std::size_t>((i - step + m) % m)];
      co_await sendrecv(dst, src, coll_tag(1 + (step - 1) % 14),
                        bytes_per_pair);
    }
  } else {
    // Small per-pair payloads: post everything, then drain ("spread").
    std::vector<MpiReq> reqs;
    reqs.reserve(static_cast<std::size_t>(2 * (m - 1)));
    for (int step = 1; step < m; ++step) {
      const int partner = members[static_cast<std::size_t>((i + step) % m)];
      reqs.push_back(post_recv(partner, coll_tag(0), bytes_per_pair));
    }
    for (int step = 1; step < m; ++step) {
      const int partner = members[static_cast<std::size_t>((i + step) % m)];
      reqs.push_back(post_send(partner, coll_tag(0), bytes_per_pair));
    }
    for (auto& r : reqs) co_await await_req(std::move(r));
  }
}

sim::Task<> Rank::alltoallv(const std::vector<int>& members, std::uint64_t bytes_per_pair) {
  const Time t0 = world_.cluster_.engine().now();
  const char* algo =
      world_.alltoall_algo(bytes_per_pair, proc_->kernel().config().sdma_threshold);
  stats_.record_algo("Alltoallv", algo);
  co_await alltoall_impl(members, bytes_per_pair, algo);
  stats_.record("Alltoallv", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::alltoall(std::uint64_t bytes_per_pair) {
  const Time t0 = world_.cluster_.engine().now();
  const char* algo =
      world_.alltoall_algo(bytes_per_pair, proc_->kernel().config().sdma_threshold);
  stats_.record_algo("Alltoall", algo);
  std::vector<int> everyone(static_cast<std::size_t>(world_.size()));
  for (int r = 0; r < world_.size(); ++r)
    everyone[static_cast<std::size_t>(r)] = r;
  co_await alltoall_impl(everyone, bytes_per_pair, algo);
  stats_.record("Alltoall", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::scan(std::uint64_t bytes) {
  const Time t0 = world_.cluster_.engine().now();
  ++coll_seq_;
  const int P = world_.size();
  if (id_ > 0) {
    MpiReq r = post_recv(id_ - 1, coll_tag(0), bytes);
    co_await await_req(std::move(r));
  }
  if (id_ + 1 < P) {
    MpiReq s = post_send(id_ + 1, coll_tag(0), bytes);
    co_await await_req(std::move(s));
  }
  stats_.record("Scan", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::cart_create() {
  const Time t0 = world_.cluster_.engine().now();
  // Topology setup: coordinate exchange + synchronization + local
  // communicator bookkeeping (allocation churn included — this call is
  // memory-management heavy in real MPI implementations).
  co_await allgather_impl(kTinyMsg);
  auto staging = co_await proc_->mmap_anon(1ull << 20);
  if (staging.ok()) (void)co_await proc_->munmap(*staging, 1ull << 20);
  co_await proc_->compute(from_us(200));
  ++coll_seq_;
  co_await dissemination(kTinyMsg);
  stats_.record("Cart_create", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::comm_create() {
  const Time t0 = world_.cluster_.engine().now();
  co_await allgather_impl(kTinyMsg);
  ++coll_seq_;
  co_await dissemination(kTinyMsg);
  stats_.record("Comm_create", world_.cluster_.engine().now() - t0);
}

sim::Task<> Rank::compute(Dur work) { co_await proc_->compute(work); }

void Rank::solve_begin() {
  solve_start_ = world_.cluster().engine().now();
  // Scope the kernel profiler to the solve region (the paper's per-app
  // kernel profiles are dominated by the solve loop on production-length
  // runs; our runs are short, so Init would otherwise pollute them). The
  // node leader clears its node's kernel profiler once.
  if (local_index() == 0) kernel_profiler().clear();
}

void Rank::solve_end() {
  stats_.set_solve(world_.cluster().engine().now() - solve_start_);
}

}  // namespace pd::mpirt
