file(REMOVE_RECURSE
  "CMakeFiles/pd_hw.dir/fabric.cpp.o"
  "CMakeFiles/pd_hw.dir/fabric.cpp.o.d"
  "CMakeFiles/pd_hw.dir/hfi_device.cpp.o"
  "CMakeFiles/pd_hw.dir/hfi_device.cpp.o.d"
  "CMakeFiles/pd_hw.dir/rcv_array.cpp.o"
  "CMakeFiles/pd_hw.dir/rcv_array.cpp.o.d"
  "CMakeFiles/pd_hw.dir/sdma.cpp.o"
  "CMakeFiles/pd_hw.dir/sdma.cpp.o.d"
  "libpd_hw.a"
  "libpd_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
