#include "src/doom/layouts.hpp"

#include <algorithm>
#include <map>

#include "src/dwarf/constants.hpp"
#include "src/dwarf/writer.hpp"

namespace pd::doom {

namespace {

using dwarf::VersionShift;

std::vector<VersionShift> shifts_for(const std::string& version) {
  if (version == "0.9-d6") return {};
  if (version == "1.1-d2")
    return {{"doom_ctx", 8, 8},        // new tracing member before flags
            {"doom_devdata", 24, 8}};  // widened IRQ mask before fence_seq
  if (version == "2.0-d1")
    return {{"doom_ringstate", 8, 8},
            {"doom_ctx", 16, 16},
            {"doom_devdata", 16, 8}};
  return {};  // caller validated the version
}

bool known_version(const std::string& v) {
  return v == "0.9-d6" || v == "1.1-d2" || v == "2.0-d1";
}

/// Baseline ("0.9-d6") layouts. Offsets follow natural alignment with gaps
/// standing in for the many fields the model does not need.
std::vector<StructDef> baseline_structs() {
  std::vector<StructDef> out;

  out.push_back(StructDef{
      "doom_ringstate",
      48,
      {
          {"run_state", 0, 4, "enum doom_run_state"},
          {"error_flags", 8, 4, "u32"},
          {"cmds_retired", 16, 8, "u64"},
      }});

  out.push_back(StructDef{
      "doom_devdata",
      192,
      {
          {"dev_idx", 0, 4, "u32"},
          {"ring_slots", 8, 4, "u32"},
          {"cmds_submitted", 16, 8, "u64"},
          {"fence_seq", 24, 8, "u64"},
          {"ring", 64, 48, "struct doom_ringstate"},
      }});

  out.push_back(StructDef{
      "doom_ctx",
      128,
      {
          {"ctx_id", 0, 4, "u32"},
          {"flags", 8, 8, "u64"},
          {"pt_capacity", 16, 4, "u32"},
          {"pt_used", 24, 8, "u64"},
          {"batches_submitted", 32, 8, "u64"},
          {"dva_next", 40, 8, "u64"},
      }});

  return out;
}

}  // namespace

Result<DoomLayouts> DoomLayouts::for_version(const std::string& version) {
  if (!known_version(version)) return Errno::enoent;
  DoomLayouts layouts;
  layouts.version_ = version;
  layouts.structs_ = baseline_structs();
  dwarf::apply_shifts(layouts.structs_, shifts_for(version));
  return layouts;
}

const StructDef* DoomLayouts::structure(const std::string& name) const {
  auto it = std::find_if(structs_.begin(), structs_.end(),
                         [&](const StructDef& s) { return s.name == name; });
  return it == structs_.end() ? nullptr : &*it;
}

dwarf::ModuleBinary DoomLayouts::ship_module() const {
  using dwarf::InfoBuilder;
  using dwarf::TypeRef;

  InfoBuilder b;
  const TypeRef u32 = b.add_base_type("unsigned int", 4, dwarf::DW_ATE_unsigned);
  const TypeRef u64 = b.add_base_type("long unsigned int", 8, dwarf::DW_ATE_unsigned);

  const TypeRef run_state = b.add_enum("doom_run_state", 4,
                                       {{"doom_halted", 0},
                                        {"doom_running", 1},
                                        {"doom_error", 2}});

  std::map<std::string, TypeRef> named_types;  // struct name → ref
  auto type_for = [&](const std::string& type_name) -> TypeRef {
    if (type_name == "u32") return u32;
    if (type_name == "u64") return u64;
    if (type_name == "enum doom_run_state") return run_state;
    if (type_name.rfind("struct ", 0) == 0) {
      const std::string sname = type_name.substr(7);
      auto it = named_types.find(sname);
      if (it != named_types.end()) return it->second;
    }
    return u64;  // unreachable for the defined layouts
  };

  // Emit in declaration order so embedded structs resolve (doom_ringstate
  // is declared before doom_devdata in baseline_structs()).
  for (const auto& s : structs_) {
    std::vector<InfoBuilder::Member> members;
    members.reserve(s.fields.size());
    for (const auto& f : s.fields)
      members.push_back(InfoBuilder::Member{f.name, type_for(f.type_name), f.offset});
    named_types[s.name] = b.add_struct(s.name, s.byte_size, std::move(members));
  }

  const dwarf::DebugInfo dbg =
      b.build("pd-doom accelerator driver build " + version_, "pd_doom.ko",
              dwarf::StringForm::strp);

  dwarf::ModuleBinary mod;
  mod.set_version("pd_doom " + version_);
  mod.set_section(".text", std::vector<std::uint8_t>(64, 0x90));  // stub
  mod.set_section(".debug_abbrev", dbg.abbrev);
  mod.set_section(".debug_info", dbg.info);
  mod.set_section(".debug_str", dbg.str);
  return mod;
}

}  // namespace pd::doom
