// In-kernel syscall profiler (the paper's "in-house kernel profiler",
// §4.3) and generic named-cost accounting used for Figures 8 and 9.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/time.hpp"

namespace pd::os {

class SyscallProfiler {
 public:
  void record(const std::string& name, Dur kernel_time) {
    auto& entry = calls_[name];
    entry.add(to_us(kernel_time));
    total_ += kernel_time;
  }

  Dur total_kernel_time() const { return total_; }
  std::size_t distinct_calls() const { return calls_.size(); }

  struct Row {
    std::string name;
    double total_us = 0;
    std::size_t count = 0;
    double share = 0;  // of total kernel time
  };

  /// Rows sorted by descending total time; `top` = 0 returns all.
  std::vector<Row> rows(std::size_t top = 0) const;

  double share_of(const std::string& name) const;
  double total_us_of(const std::string& name) const;
  std::uint64_t count_of(const std::string& name) const;

  void merge(const SyscallProfiler& other);
  void clear() {
    calls_.clear();
    total_ = 0;
  }

 private:
  std::map<std::string, RunningStats> calls_;
  Dur total_ = 0;
};

}  // namespace pd::os
