#include "src/mem/kheap.hpp"

#include <algorithm>
#include <cstring>

namespace pd::mem {

KernelHeap::KernelHeap(std::vector<int> owned_cpus, ForeignFreePolicy policy, PhysAddr heap_base,
                       bool slab_enabled)
    : owned_cpus_(std::move(owned_cpus)),
      policy_(policy),
      next_addr_(heap_base),
      slab_enabled_(slab_enabled) {
  for (int cpu : owned_cpus_) magazines_[cpu];  // one magazine set per core
}

bool KernelHeap::owns_cpu(int cpu) const {
  return std::find(owned_cpus_.begin(), owned_cpus_.end(), cpu) != owned_cpus_.end();
}

std::size_t KernelHeap::class_for(std::uint64_t size) {
  for (std::size_t i = 0; i < kSizeClasses.size(); ++i)
    if (size <= kSizeClasses[i]) return i;
  return kSizeClasses.size();
}

Result<PhysAddr> KernelHeap::kmalloc(std::uint64_t size, int cpu) {
  if (size == 0) return Errno::einval;
  if (!owns_cpu(cpu)) return Errno::eperm;

  const std::size_t cls = class_for(size);
  if (slab_enabled_ && cls < kSizeClasses.size()) {
    auto& magazine = magazines_[cpu][cls];
    if (!magazine.empty()) {
      const PhysAddr addr = magazine.back();
      magazine.pop_back();
      Block& block = blocks_[addr];
      block.size = size;
      block.owner_cpu = cpu;
      block.live = true;
      std::memset(block.bytes.get(), 0, block.capacity);
      ++stats_.allocs;
      ++stats_.slab_reuses;
      stats_.bytes_live += size;
      ++live_blocks_;
      return addr;
    }
  }

  Block block;
  block.size = size;
  block.capacity = cls < kSizeClasses.size() ? kSizeClasses[cls] : size;
  block.owner_cpu = cpu;
  block.live = true;
  block.bytes = std::make_unique<std::uint8_t[]>(block.capacity);
  std::memset(block.bytes.get(), 0, block.capacity);

  const PhysAddr addr = next_addr_;
  next_addr_ = page_ceil(next_addr_ + block.capacity, 64);  // cacheline spacing
  blocks_.emplace(addr, std::move(block));
  ++stats_.allocs;
  ++stats_.host_allocs;
  stats_.bytes_live += size;
  ++live_blocks_;
  return addr;
}

void KernelHeap::park_on_magazine(PhysAddr addr, Block& block) {
  const std::size_t cls = class_for(block.capacity);
  if (slab_enabled_ && cls < kSizeClasses.size() && owns_cpu(block.owner_cpu)) {
    block.live = false;
    magazines_[block.owner_cpu][cls].push_back(addr);
    ++stats_.slab_recycles;
  } else {
    blocks_.erase(addr);
  }
}

Status KernelHeap::kfree(PhysAddr addr, int cpu) {
  auto it = blocks_.find(addr);
  if (it == blocks_.end() || !it->second.live) return Errno::einval;

  if (owns_cpu(cpu)) {
    stats_.bytes_live -= it->second.size;
    ++stats_.local_frees;
    --live_blocks_;
    park_on_magazine(addr, it->second);
    return Status::success();
  }

  if (policy_ == ForeignFreePolicy::fail) {
    // Original McKernel: the per-core free list for `cpu` does not exist.
    ++stats_.rejected_frees;
    return Errno::eperm;
  }

  // PicoDriver extension: park the block on the owner core's remote queue.
  remote_free_queues_[it->second.owner_cpu].push_back(addr);
  ++stats_.remote_frees;
  return Status::success();
}

std::size_t KernelHeap::drain_remote_frees(int cpu) {
  auto qit = remote_free_queues_.find(cpu);
  if (qit == remote_free_queues_.end() || qit->second.empty()) return 0;
  // One batch: recycle every queued block, then clear. Nothing re-enters the
  // queue while parking, and clear() keeps the deque's chunk — so the
  // steady-state free/drain cycle never touches the host heap.
  std::deque<PhysAddr>& pending = qit->second;
  std::size_t drained = 0;
  for (const PhysAddr addr : pending) {
    auto it = blocks_.find(addr);
    if (it == blocks_.end() || !it->second.live) continue;
    stats_.bytes_live -= it->second.size;
    --live_blocks_;
    park_on_magazine(addr, it->second);
    ++drained;
  }
  pending.clear();
  return drained;
}

std::span<std::uint8_t> KernelHeap::data(PhysAddr addr) {
  auto it = blocks_.find(addr);
  if (it == blocks_.end() || !it->second.live) return {};
  return {it->second.bytes.get(), it->second.size};
}

std::size_t KernelHeap::remote_queue_depth(int cpu) const {
  auto it = remote_free_queues_.find(cpu);
  return it == remote_free_queues_.end() ? 0 : it->second.size();
}

std::size_t KernelHeap::magazine_depth(int cpu) const {
  auto it = magazines_.find(cpu);
  if (it == magazines_.end()) return 0;
  std::size_t total = 0;
  for (const auto& list : it->second) total += list.size();
  return total;
}

}  // namespace pd::mem
