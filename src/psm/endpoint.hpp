// Performance Scaled Messaging (PSM) library model (paper §2.2.1).
//
// An Endpoint is a rank's user-space communication context over the HFI:
// matched queues (tag matching), three transfer protocols chosen by size —
//
//   * PIO      (≤ pio_threshold):    user-space only, CPU-copied, no syscall;
//   * eager    (≤ sdma_threshold):   one SDMA writev() per message; data
//                                    lands in eager buffers and is copied
//                                    out by the receiving CPU;
//   * expected (>  sdma_threshold):  rendezvous. RTS → receiver programs
//                                    RcvArray TIDs per window (ioctl) and
//                                    returns CTS → sender writev()s each
//                                    window → direct data placement, TIDs
//                                    freed per window (ioctl).
//
// The syscalls in the eager/expected paths are exactly the ones PicoDriver
// accelerates; on plain McKernel each is an offload.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>

#include "src/hw/hfi_device.hpp"
#include "src/os/process.hpp"
#include "src/pico/hfi_picodriver.hpp"

namespace pd::psm {

struct EndpointId {
  int node = 0;
  int ctxt = 0;
  friend bool operator==(const EndpointId&, const EndpointId&) = default;
};

/// One outstanding matched-queue operation.
struct PsmRequest {
  enum class Kind { send, recv };
  Kind kind = Kind::send;
  std::uint64_t tag = 0;
  std::uint64_t bytes = 0;
  mem::VirtAddr buf = 0;
  EndpointId peer;

  bool complete = false;
  std::unique_ptr<sim::Latch> done;

  // Send-side rendezvous state.
  std::uint64_t msg_id = 0;
  std::uint32_t windows_total = 0;
  std::uint32_t windows_completed = 0;

  // Receive-side rendezvous state.
  std::uint32_t windows_granted = 0;
  std::uint32_t windows_received = 0;
  std::map<std::uint32_t, std::vector<std::uint32_t>> window_tids;
};

using PsmHandle = std::shared_ptr<PsmRequest>;

class Endpoint {
 public:
  /// `pico` may be null (Linux or plain-McKernel configurations); when set
  /// its per-rank init cost is charged inside init().
  Endpoint(os::Process& proc, hw::HfiDevice& local_dev, pico::HfiPicoDriver* pico);
  ~Endpoint();

  /// Open the device, run the admin handshake (ioctls, CSR mmap, read) and
  /// start the progress loop. The MPI_Init component of Table 1.
  sim::Task<Status> init();
  /// Stop progress and close the device file.
  sim::Task<Status> finalize();

  EndpointId id() const { return EndpointId{proc_.node(), proc_.ctxt()}; }
  os::Process& process() { return proc_; }

  PsmHandle isend(EndpointId dst, std::uint64_t tag, std::uint64_t bytes, mem::VirtAddr buf);
  PsmHandle irecv(EndpointId src, std::uint64_t tag, std::uint64_t bytes, mem::VirtAddr buf);
  sim::Task<> wait(PsmHandle h);

  /// --- protocol instrumentation ------------------------------------------
  std::uint64_t pio_sends() const { return pio_sends_; }
  std::uint64_t eager_sends() const { return eager_sends_; }
  std::uint64_t expected_sends() const { return expected_sends_; }

  /// --- fast-path translation-cache instrumentation ------------------------
  /// The eager/expected sends and TID registrations this endpoint issues
  /// are what populate the pico driver's extent/TID cache; these surface
  /// its outcome counts at the PSM level (all zero without the driver).
  std::uint64_t extent_cache_hits() const {
    return pico_ != nullptr ? pico_->extent_cache_hits() : 0;
  }
  std::uint64_t extent_cache_misses() const {
    return pico_ != nullptr ? pico_->extent_cache_misses() : 0;
  }
  std::uint64_t extent_cache_range_invalidations() const {
    return pico_ != nullptr ? pico_->extent_cache_range_invalidations() : 0;
  }
  std::uint64_t extent_cache_generation_overflows() const {
    return pico_ != nullptr ? pico_->extent_cache_generation_overflows() : 0;
  }
  std::uint64_t extent_cache_small_evictions() const {
    return pico_ != nullptr ? pico_->extent_cache_small_evictions() : 0;
  }

 private:
  struct RecvKey {
    int src_node;
    int src_ctxt;
    std::uint64_t msg_id;
    auto operator<=>(const RecvKey&) const = default;
  };

  sim::Task<> progress_loop();
  sim::Task<> run_send(PsmHandle h);
  sim::Task<> send_window(PsmHandle h, std::uint32_t window, std::uint32_t tid);
  sim::Task<> handle_rts(hw::RxEvent ev, PsmHandle recv);
  sim::Task<> grant_window(PsmHandle recv, const hw::RxEvent& rts, std::uint32_t window);
  sim::Task<> finish_grant(PsmHandle recv, const hw::RxEvent& rts, std::uint32_t window,
                           std::vector<std::uint32_t> tids);
  sim::Task<> handle_expected_data(hw::RxEvent ev);
  void complete(PsmHandle& h);
  void deliver_eager(PsmHandle recv, const hw::RxEvent& ev);
  PsmHandle match_posted(const hw::RxEvent& ev);

  hw::WireMessage base_msg(EndpointId dst) const;
  std::uint64_t window_bytes() const;

  os::Process& proc_;
  hw::HfiDevice& dev_;
  pico::HfiPicoDriver* pico_;
  sim::Engine& engine_;
  const os::Config& cfg_;

  int fd_ = -1;
  bool running_ = false;
  sim::Channel<hw::RxEvent>* rx_ = nullptr;
  std::unique_ptr<sim::Latch> stopped_;

  std::uint64_t next_msg_id_ = 1;
  std::list<PsmHandle> posted_recvs_;
  std::deque<hw::RxEvent> unexpected_;
  std::map<std::uint64_t, PsmHandle> active_sends_;   // by msg_id
  std::map<RecvKey, PsmHandle> active_recvs_;         // rendezvous in flight

  std::uint64_t pio_sends_ = 0;
  std::uint64_t eager_sends_ = 0;
  std::uint64_t expected_sends_ = 0;
};

}  // namespace pd::psm
